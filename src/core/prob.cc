#include "core/prob.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/counters.h"
#include "util/logging.h"

namespace limbo::core {

namespace {
constexpr double kLog2e = 1.4426950408889634;  // 1/ln(2)

double Log2(double x) { return std::log(x) * kLog2e; }
}  // namespace

SparseDistribution SparseDistribution::UniformOver(
    std::span<const uint32_t> ids) {
  SparseDistribution d;
  if (ids.empty()) return d;
  const double mass = 1.0 / static_cast<double>(ids.size());
  d.entries_.reserve(ids.size());
  for (uint32_t id : ids) d.entries_.push_back({id, mass});
  std::sort(d.entries_.begin(), d.entries_.end(),
            [](const Entry& a, const Entry& b) { return a.id < b.id; });
  for (size_t i = 1; i < d.entries_.size(); ++i) {
    LIMBO_CHECK(d.entries_[i].id != d.entries_[i - 1].id);
  }
  return d;
}

SparseDistribution SparseDistribution::FromPairs(std::vector<Entry> entries) {
  SparseDistribution d;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.id < b.id; });
  double total = 0.0;
  for (const Entry& e : entries) {
    LIMBO_CHECK(e.mass >= 0.0);
    total += e.mass;
  }
  LIMBO_CHECK(total > 0.0);
  d.entries_.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) LIMBO_CHECK(entries[i].id != entries[i - 1].id);
    if (entries[i].mass > 0.0) {
      d.entries_.push_back({entries[i].id, entries[i].mass / total});
    }
  }
  return d;
}

SparseDistribution SparseDistribution::FromNormalizedPairs(
    std::vector<Entry> entries) {
  SparseDistribution d;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.id < b.id; });
  for (size_t i = 0; i < entries.size(); ++i) {
    LIMBO_CHECK(entries[i].mass > 0.0);
    if (i > 0) LIMBO_CHECK(entries[i].id != entries[i - 1].id);
  }
  d.entries_ = std::move(entries);
  return d;
}

SparseDistribution SparseDistribution::WeightedMerge(
    double w1, const SparseDistribution& a, double w2,
    const SparseDistribution& b) {
  SparseDistribution out;
  out.entries_.reserve(a.entries_.size() + b.entries_.size());
  size_t i = 0;
  size_t j = 0;
  while (i < a.entries_.size() && j < b.entries_.size()) {
    const Entry& ea = a.entries_[i];
    const Entry& eb = b.entries_[j];
    if (ea.id < eb.id) {
      out.entries_.push_back({ea.id, w1 * ea.mass});
      ++i;
    } else if (eb.id < ea.id) {
      out.entries_.push_back({eb.id, w2 * eb.mass});
      ++j;
    } else {
      out.entries_.push_back({ea.id, w1 * ea.mass + w2 * eb.mass});
      ++i;
      ++j;
    }
  }
  for (; i < a.entries_.size(); ++i) {
    out.entries_.push_back({a.entries_[i].id, w1 * a.entries_[i].mass});
  }
  for (; j < b.entries_.size(); ++j) {
    out.entries_.push_back({b.entries_[j].id, w2 * b.entries_[j].mass});
  }
  return out;
}

double SparseDistribution::MassAt(uint32_t id) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, uint32_t target) { return e.id < target; });
  if (it == entries_.end() || it->id != id) return 0.0;
  return it->mass;
}

double SparseDistribution::TotalMass() const {
  double total = 0.0;
  for (const Entry& e : entries_) total += e.mass;
  return total;
}

double SparseDistribution::Entropy() const {
  double h = 0.0;
  for (const Entry& e : entries_) {
    if (e.mass > 0.0) h -= e.mass * Log2(e.mass);
  }
  return h;
}

double KlDivergence(const SparseDistribution& p, const SparseDistribution& q) {
  double d = 0.0;
  const auto& pe = p.entries();
  const auto& qe = q.entries();
  size_t i = 0;
  size_t j = 0;
  while (i < pe.size()) {
    while (j < qe.size() && qe[j].id < pe[i].id) ++j;
    if (j == qe.size() || qe[j].id != pe[i].id) {
      return std::numeric_limits<double>::infinity();
    }
    d += pe[i].mass * Log2(pe[i].mass / qe[j].mass);
    ++i;
  }
  return d;
}

namespace {

using Entry = SparseDistribution::Entry;

/// First index >= j whose id is >= target, by galloping (exponential
/// probe doubling from j, then binary search inside the bracketed gap).
/// O(log gap) per call, and a full left-to-right sweep over ascending
/// targets costs O(small·log(large/small)) total — never worse than the
/// plain binary search per probe it replaces, and cache-friendlier
/// because probes start where the last match ended. `probes` counts id
/// comparisons when non-null.
size_t GallopTo(std::span<const Entry> e, size_t j, uint32_t target,
                uint64_t* probes) {
  const size_t n = e.size();
  if (j >= n) return n;
  if (probes) ++*probes;
  if (e[j].id >= target) return j;
  // Invariant: e[lo].id < target.
  size_t lo = j;
  size_t step = 1;
  size_t hi = j + step;
  while (hi < n) {
    if (probes) ++*probes;
    if (e[hi].id >= target) break;
    lo = hi;
    step <<= 1;
    hi = j + step;
  }
  if (hi > n) hi = n;
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (probes) ++*probes;
    if (e[mid].id < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace

namespace internal {

/// JS divergence when |p| << |q|: for ids only in q the per-id term is
/// w2 * q_i * log(1/w2), and the q-only mass is 1 - (q-mass at p's ids),
/// so the whole sum needs only |p| galloping lookups into q.
double JsDivergenceAsymmetric(double w1, const SparseDistribution& p,
                              double w2, const SparseDistribution& q,
                              uint64_t* probes) {
  const double log_inv_w1 = (w1 > 0.0) ? -std::log2(w1) : 0.0;
  const double log_inv_w2 = (w2 > 0.0) ? -std::log2(w2) : 0.0;
  double d = 0.0;
  double shared_q_mass = 0.0;
  const std::span<const Entry> qe(q.entries());
  size_t j = 0;
  for (const auto& e : p.entries()) {
    j = GallopTo(qe, j, e.id, probes);
    const double qm = (j < qe.size() && qe[j].id == e.id) ? qe[j].mass : 0.0;
    if (qm == 0.0) {
      d += w1 * e.mass * log_inv_w1;
    } else {
      shared_q_mass += qm;
      const double mm = w1 * e.mass + w2 * qm;
      d += w1 * e.mass * Log2(e.mass / mm) + w2 * qm * Log2(qm / mm);
    }
  }
  // Assumes q is normalized (every distribution in this library is); this
  // avoids the O(|q|) total-mass scan the fast path exists to skip.
  const double q_only = 1.0 - shared_q_mass;
  if (q_only > 0.0) d += w2 * q_only * log_inv_w2;
  return d < 0.0 ? 0.0 : d;
}

double JsDivergenceMergeJoin(double w1, const SparseDistribution& p,
                             double w2, const SparseDistribution& q) {
  const double log_inv_w1 = (w1 > 0.0) ? -Log2(w1) : 0.0;
  const double log_inv_w2 = (w2 > 0.0) ? -Log2(w2) : 0.0;
  double d = 0.0;
  const auto& pe = p.entries();
  const auto& qe = q.entries();
  size_t i = 0;
  size_t j = 0;
  while (i < pe.size() && j < qe.size()) {
    if (pe[i].id < qe[j].id) {
      d += w1 * pe[i].mass * log_inv_w1;
      ++i;
    } else if (qe[j].id < pe[i].id) {
      d += w2 * qe[j].mass * log_inv_w2;
      ++j;
    } else {
      const double pm = pe[i].mass;
      const double qm = qe[j].mass;
      const double mm = w1 * pm + w2 * qm;
      d += w1 * pm * Log2(pm / mm) + w2 * qm * Log2(qm / mm);
      ++i;
      ++j;
    }
  }
  for (; i < pe.size(); ++i) d += w1 * pe[i].mass * log_inv_w1;
  for (; j < qe.size(); ++j) d += w2 * qe[j].mass * log_inv_w2;
  // Guard against tiny negative rounding artifacts.
  return d < 0.0 ? 0.0 : d;
}

}  // namespace internal

double JsDivergence(double w1, const SparseDistribution& p, double w2,
                    const SparseDistribution& q) {
  // For id present only in p: m = w1*p_i, term = w1 * p_i * log(p_i / m)
  //                                            = w1 * p_i * log(1/w1).
  // Symmetrically for q. Shared ids use the full formula.
  if (p.Empty() || q.Empty()) return 0.0;
  // Asymmetric fast path: iterating the union is wasteful when one side is
  // tiny (an object distribution vs. a near-root cluster summary).
  if (p.SupportSize() * kAsymmetricCutoffRatio < q.SupportSize()) {
    return internal::JsDivergenceAsymmetric(w1, p, w2, q);
  }
  if (q.SupportSize() * kAsymmetricCutoffRatio < p.SupportSize()) {
    return internal::JsDivergenceAsymmetric(w2, q, w1, p);
  }
  return internal::JsDivergenceMergeJoin(w1, p, w2, q);
}

// ---------------------------------------------------------------------------
// DistributionArena

void DistributionArena::Clear() {
  entries_.clear();
  log2s_.clear();
  offsets_.assign(1, 0);
}

void DistributionArena::ReserveEntries(size_t n) {
  entries_.reserve(n);
  log2s_.reserve(n);
}

size_t DistributionArena::Append(DistributionView row) {
  for (size_t k = 0; k < row.entries.size(); ++k) {
    const Entry& e = row.entries[k];
    if (e.mass <= 0.0) continue;
    entries_.push_back(e);
    log2s_.push_back(row.log2s ? row.log2s[k] : Log2(e.mass));
  }
  offsets_.push_back(entries_.size());
  return offsets_.size() - 2;
}

size_t DistributionArena::AppendMerge(double w1, size_t a, double w2,
                                      size_t b) {
  const size_t na = offsets_[a + 1] - offsets_[a];
  const size_t nb = offsets_[b + 1] - offsets_[b];
  // Reserve up front so the source rows stay put while we push the merge.
  entries_.reserve(entries_.size() + na + nb);
  log2s_.reserve(log2s_.size() + na + nb);
  const Entry* ae = entries_.data() + offsets_[a];
  const Entry* be = entries_.data() + offsets_[b];
  auto emit = [this](uint32_t id, double mass) {
    if (mass <= 0.0) return;
    entries_.push_back({id, mass});
    log2s_.push_back(Log2(mass));
  };
  size_t i = 0;
  size_t j = 0;
  while (i < na && j < nb) {
    if (ae[i].id < be[j].id) {
      emit(ae[i].id, w1 * ae[i].mass);
      ++i;
    } else if (be[j].id < ae[i].id) {
      emit(be[j].id, w2 * be[j].mass);
      ++j;
    } else {
      emit(ae[i].id, w1 * ae[i].mass + w2 * be[j].mass);
      ++i;
      ++j;
    }
  }
  for (; i < na; ++i) emit(ae[i].id, w1 * ae[i].mass);
  for (; j < nb; ++j) emit(be[j].id, w2 * be[j].mass);
  offsets_.push_back(entries_.size());
  return offsets_.size() - 2;
}

// ---------------------------------------------------------------------------
// LossKernel

namespace {
// Ids below this scatter into the dense scratch; DBLP-style domains are
// a few hundred thousand ids, well under it. Larger ids fall back to a
// two-pointer walk with identical arithmetic, so the cap only trades
// memory for speed.
constexpr uint32_t kDenseIdLimit = 1u << 22;
}  // namespace

void LossKernel::SetObject(double p, DistributionView cond, uint64_t tag) {
  if (tag != 0 && tag == tag_) {
    ++stats_.dedup_hits;
    return;
  }
  ++stats_.scatters;
  tag_ = tag;
  for (uint32_t id : touched_) dense_mass_[id] = 0.0;
  touched_.clear();
  object_p_ = p;
  object_ = cond;
  const size_t n = cond.entries.size();
  if (cond.log2s == nullptr) owned_log2s_.resize(n);
  const uint32_t max_id = n > 0 ? cond.entries[n - 1].id : 0;  // sorted
  dense_ = n > 0 && max_id < kDenseIdLimit;
  if (dense_ && dense_mass_.size() <= max_id) {
    dense_mass_.resize(max_id + 1, 0.0);
    dense_log_.resize(max_id + 1, 0.0);
  }
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    const double mass = cond.entries[k].mass;
    total += mass;
    const double log =
        cond.log2s ? cond.log2s[k] : (mass > 0.0 ? Log2(mass) : 0.0);
    if (cond.log2s == nullptr) owned_log2s_[k] = log;
    if (dense_ && mass > 0.0) {
      const uint32_t id = cond.entries[k].id;
      dense_mass_[id] = mass;
      dense_log_[id] = log;
      touched_.push_back(id);
    }
  }
  object_log2s_ = cond.log2s ? cond.log2s : owned_log2s_.data();
  object_mass_ = total;
}

double LossKernel::Loss(double p, DistributionView cand) const {
  ++stats_.loss_calls;
  const double total = object_p_ + p;
  if (total <= 0.0) return 0.0;
  if (object_.Empty() || cand.Empty()) return 0.0;
  const double w1 = object_p_ / total;
  const double w2 = p / total;
  const double js =
      (object_.SupportSize() * kAsymmetricCutoffRatio < cand.SupportSize())
          ? JsSmallObject(w1, w2, cand)
          : JsStreamCandidate(w1, w2, cand);
  return total * (js < 0.0 ? 0.0 : js);
}

double LossKernel::JsSmallObject(double w1, double w2,
                                 DistributionView cand) const {
  const double log_inv_w1 = (w1 > 0.0) ? -Log2(w1) : 0.0;
  const double log_inv_w2 = (w2 > 0.0) ? -Log2(w2) : 0.0;
  double d = 0.0;
  double shared_c = 0.0;
  const std::span<const Entry> ce = cand.entries;
  const std::span<const Entry> oe = object_.entries;
  size_t j = 0;
  for (size_t k = 0; k < oe.size(); ++k) {
    const double pm = oe[k].mass;
    if (pm <= 0.0) continue;
    const uint32_t id = oe[k].id;
    j = GallopTo(ce, j, id, nullptr);
    if (j < ce.size() && ce[j].id == id && ce[j].mass > 0.0) {
      const double qm = ce[j].mass;
      const double lq = cand.log2s ? cand.log2s[j] : Log2(qm);
      const double mm = w1 * pm + w2 * qm;
      d += w1 * pm * object_log2s_[k] + w2 * qm * lq - mm * Log2(mm);
    } else {
      d += w1 * pm * log_inv_w1;
    }
    if (j < ce.size() && ce[j].id == id) shared_c += ce[j].mass;
  }
  // Candidate-only mass as a residual: the candidate is normalized
  // (every conditional here is), so 1 - shared avoids the O(|cand|) scan
  // this path exists to skip — same assumption as JsDivergenceAsymmetric.
  const double c_only = 1.0 - shared_c;
  if (c_only > 0.0) d += w2 * c_only * log_inv_w2;
  return d;
}

double LossKernel::JsStreamCandidate(double w1, double w2,
                                     DistributionView cand) const {
  const double log_inv_w1 = (w1 > 0.0) ? -Log2(w1) : 0.0;
  const double log_inv_w2 = (w2 > 0.0) ? -Log2(w2) : 0.0;
  double d = 0.0;
  double shared_o = 0.0;
  const std::span<const Entry> ce = cand.entries;
  if (dense_) {
    const size_t limit = dense_mass_.size();
    for (size_t j = 0; j < ce.size(); ++j) {
      const double qm = ce[j].mass;
      if (qm <= 0.0) continue;
      const uint32_t id = ce[j].id;
      const double pm = (id < limit) ? dense_mass_[id] : 0.0;
      if (pm == 0.0) {
        d += w2 * qm * log_inv_w2;
      } else {
        const double lq = cand.log2s ? cand.log2s[j] : Log2(qm);
        const double mm = w1 * pm + w2 * qm;
        d += w1 * pm * dense_log_[id] + w2 * qm * lq - mm * Log2(mm);
        shared_o += pm;
      }
    }
  } else {
    // Dense scatter unavailable (huge ids): two-pointer into the object
    // row, emitting the exact same per-entry terms in the same order.
    const std::span<const Entry> oe = object_.entries;
    size_t k = 0;
    for (size_t j = 0; j < ce.size(); ++j) {
      const double qm = ce[j].mass;
      if (qm <= 0.0) continue;
      const uint32_t id = ce[j].id;
      k = GallopTo(oe, k, id, nullptr);
      const bool hit = k < oe.size() && oe[k].id == id && oe[k].mass > 0.0;
      if (!hit) {
        d += w2 * qm * log_inv_w2;
      } else {
        const double pm = oe[k].mass;
        const double lq = cand.log2s ? cand.log2s[j] : Log2(qm);
        const double mm = w1 * pm + w2 * qm;
        d += w1 * pm * object_log2s_[k] + w2 * qm * lq - mm * Log2(mm);
        shared_o += pm;
      }
    }
  }
  // Object-only mass as a residual of the exact entry-order total, so the
  // result does not depend on which candidate is being scored.
  const double o_only = object_mass_ - shared_o;
  if (o_only > 0.0) d += w1 * o_only * log_inv_w1;
  return d;
}

NearestCandidate FindNearestCandidate(LossKernel* kernel, double object_p,
                                      DistributionView object_cond,
                                      std::span<const double> candidate_p,
                                      const DistributionArena& arena,
                                      std::span<const size_t> candidate_rows) {
  kernel->SetObject(object_p, object_cond);
  NearestCandidate best;
  best.loss = std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < candidate_rows.size(); ++r) {
    const double d = kernel->Loss(candidate_p[r], arena.Row(candidate_rows[r]));
    if (d < best.loss) {
      best.loss = d;
      best.index = static_cast<uint32_t>(r);
    }
  }
  return best;
}

void FlushKernelStats(const std::vector<LossKernel>& kernels,
                      const std::string& prefix) {
  if (!obs::Enabled()) return;
  LossKernel::Stats total;
  for (const LossKernel& kernel : kernels) {
    total.loss_calls += kernel.stats().loss_calls;
    total.scatters += kernel.stats().scatters;
    total.dedup_hits += kernel.stats().dedup_hits;
  }
  obs::GetCounter(prefix + ".loss_calls").Add(total.loss_calls);
  obs::GetCounter(prefix + ".scatters", /*scheduling=*/true)
      .Add(total.scatters);
  obs::GetCounter(prefix + ".dedup_hits", /*scheduling=*/true)
      .Add(total.dedup_hits);
}

}  // namespace limbo::core
