#ifndef LIMBO_CORE_SUMMARY_IO_H_
#define LIMBO_CORE_SUMMARY_IO_H_

#include <string>
#include <vector>

#include "core/dcf.h"
#include "util/result.h"

namespace limbo::core {

/// Serialization of DCF/ADCF summaries. Phase-1 summaries are the
/// expensive, reusable artifact of the paper's workflow (the same tuple
/// summaries feed duplicate detection, Double Clustering, attribute
/// grouping and partitioning), so a data browser wants to build them once
/// and reload them across sessions.
///
/// Format: a versioned line-oriented text format —
///   limbo-dcf 2
///   meta phi <phi> mi <bits> threshold <bits>   (optional)
///   <count>
///   p <mass> k <support> [a <m> c1..cm]
///   <id> <mass> ... (support pairs)
/// Probabilities round-trip bit-exactly: masses are written as
/// 17-significant-digit decimals and read back verbatim (never
/// renormalized). Version-1 files (no meta line) still parse.

/// Run parameters a summary file carries alongside the DCFs, so a reload
/// can reproduce thresholded decisions (duplicate checks, tree rebuilds)
/// without re-deriving them from the source relation.
struct DcfMeta {
  bool has_clustering = false;      // meta line present
  double phi = 0.0;                 // φ used for the merge threshold
  double mutual_information = 0.0;  // I(V;T) of the source objects, bits
  double threshold = 0.0;           // φ·I/n actually applied, bits
};

/// Serializes `dcfs` to a string; the overload records `meta` when
/// meta.has_clustering is set.
std::string SerializeDcfs(const std::vector<Dcf>& dcfs);
std::string SerializeDcfs(const std::vector<Dcf>& dcfs, const DcfMeta& meta);

/// Parses summaries back; fails on malformed or version-mismatched input.
/// The overload also surfaces the meta line (has_clustering false when the
/// file carries none, e.g. version-1 files).
util::Result<std::vector<Dcf>> ParseDcfs(const std::string& text);
util::Result<std::vector<Dcf>> ParseDcfs(const std::string& text,
                                         DcfMeta* meta);

/// File convenience wrappers.
util::Status SaveDcfs(const std::vector<Dcf>& dcfs, const std::string& path);
util::Status SaveDcfs(const std::vector<Dcf>& dcfs, const DcfMeta& meta,
                      const std::string& path);
util::Result<std::vector<Dcf>> LoadDcfs(const std::string& path);
util::Result<std::vector<Dcf>> LoadDcfs(const std::string& path,
                                        DcfMeta* meta);

}  // namespace limbo::core

#endif  // LIMBO_CORE_SUMMARY_IO_H_
