#ifndef LIMBO_CORE_SUMMARY_IO_H_
#define LIMBO_CORE_SUMMARY_IO_H_

#include <string>
#include <vector>

#include "core/dcf.h"
#include "util/result.h"

namespace limbo::core {

/// Serialization of DCF/ADCF summaries. Phase-1 summaries are the
/// expensive, reusable artifact of the paper's workflow (the same tuple
/// summaries feed duplicate detection, Double Clustering, attribute
/// grouping and partitioning), so a data browser wants to build them once
/// and reload them across sessions.
///
/// Format: a versioned line-oriented text format —
///   limbo-dcf 1
///   <count>
///   p <mass> k <support> [a <m> c1..cm]
///   <id> <mass> ... (support pairs)
/// Probabilities round-trip exactly via 17-significant-digit decimals.

/// Serializes `dcfs` to a string.
std::string SerializeDcfs(const std::vector<Dcf>& dcfs);

/// Parses summaries back; fails on malformed or version-mismatched input.
util::Result<std::vector<Dcf>> ParseDcfs(const std::string& text);

/// File convenience wrappers.
util::Status SaveDcfs(const std::vector<Dcf>& dcfs, const std::string& path);
util::Result<std::vector<Dcf>> LoadDcfs(const std::string& path);

}  // namespace limbo::core

#endif  // LIMBO_CORE_SUMMARY_IO_H_
