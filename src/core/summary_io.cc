#include "core/summary_io.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace limbo::core {

namespace {
constexpr const char* kMagic = "limbo-dcf";
constexpr int kVersion = 2;
}  // namespace

std::string SerializeDcfs(const std::vector<Dcf>& dcfs) {
  return SerializeDcfs(dcfs, DcfMeta());
}

std::string SerializeDcfs(const std::vector<Dcf>& dcfs, const DcfMeta& meta) {
  std::string out = util::StrFormat("%s %d\n", kMagic, kVersion);
  if (meta.has_clustering) {
    out += util::StrFormat("meta phi %.17g mi %.17g threshold %.17g\n",
                           meta.phi, meta.mutual_information, meta.threshold);
  }
  out += util::StrFormat("%zu\n", dcfs.size());
  for (const Dcf& d : dcfs) {
    out += util::StrFormat("p %.17g k %zu", d.p, d.cond.SupportSize());
    if (d.IsAdcf()) {
      out += util::StrFormat(" a %zu", d.attr_counts.size());
      for (uint64_t c : d.attr_counts) {
        out += util::StrFormat(" %" PRIu64, c);
      }
    }
    out += "\n";
    for (const auto& e : d.cond.entries()) {
      out += util::StrFormat("%u %.17g\n", e.id, e.mass);
    }
  }
  return out;
}

util::Result<std::vector<Dcf>> ParseDcfs(const std::string& text) {
  return ParseDcfs(text, nullptr);
}

util::Result<std::vector<Dcf>> ParseDcfs(const std::string& text,
                                         DcfMeta* meta) {
  if (meta != nullptr) *meta = DcfMeta();
  std::istringstream in(text);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic) {
    return util::Status::InvalidArgument("not a limbo-dcf stream");
  }
  if (version != 1 && version != kVersion) {
    return util::Status::InvalidArgument(
        util::StrFormat("unsupported dcf version %d", version));
  }
  std::string tag;
  if (version >= 2 && in >> std::ws && in.peek() == 'm') {
    DcfMeta parsed;
    parsed.has_clustering = true;
    std::string key_phi;
    std::string key_mi;
    std::string key_threshold;
    if (!(in >> tag >> key_phi >> parsed.phi >> key_mi >>
          parsed.mutual_information >> key_threshold >> parsed.threshold) ||
        tag != "meta" || key_phi != "phi" || key_mi != "mi" ||
        key_threshold != "threshold") {
      return util::Status::InvalidArgument("malformed meta line");
    }
    if (meta != nullptr) *meta = parsed;
  }
  size_t count = 0;
  if (!(in >> count)) {
    return util::Status::InvalidArgument("missing summary count");
  }
  std::vector<Dcf> dcfs;
  dcfs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Dcf d;
    size_t support = 0;
    if (!(in >> tag >> d.p) || tag != "p") {
      return util::Status::InvalidArgument(
          util::StrFormat("summary %zu: expected 'p <mass>'", i));
    }
    if (!std::isfinite(d.p) || d.p <= 0.0) {
      return util::Status::InvalidArgument(
          util::StrFormat("summary %zu: p out of range", i));
    }
    if (!(in >> tag >> support) || tag != "k") {
      return util::Status::InvalidArgument(
          util::StrFormat("summary %zu: expected 'k <support>'", i));
    }
    // Optional ADCF block.
    if (in >> std::ws && in.peek() == 'a') {
      size_t m = 0;
      if (!(in >> tag >> m) || tag != "a") {
        return util::Status::InvalidArgument(
            util::StrFormat("summary %zu: malformed attr-count header", i));
      }
      d.attr_counts.resize(m);
      for (size_t a = 0; a < m; ++a) {
        if (!(in >> d.attr_counts[a])) {
          return util::Status::InvalidArgument(
              util::StrFormat("summary %zu: truncated attr counts", i));
        }
      }
    }
    std::vector<SparseDistribution::Entry> entries;
    entries.reserve(support);
    for (size_t e = 0; e < support; ++e) {
      uint32_t id = 0;
      double mass = 0.0;
      if (!(in >> id >> mass)) {
        return util::Status::InvalidArgument(
            util::StrFormat("summary %zu: truncated support", i));
      }
      // Validate here with typed errors: the class invariants (sorted,
      // strictly positive) are LIMBO_CHECKed, and a hostile file must not
      // reach an abort.
      if (!std::isfinite(mass) || mass <= 0.0) {
        return util::Status::InvalidArgument(
            util::StrFormat("summary %zu: mass out of range", i));
      }
      if (!entries.empty() && id <= entries.back().id) {
        return util::Status::InvalidArgument(
            util::StrFormat("summary %zu: ids not strictly increasing", i));
      }
      entries.push_back({id, mass});
    }
    if (!entries.empty()) {
      // Masses were written from a valid distribution; keep them
      // bit-for-bit instead of renormalizing (FromPairs divides by the
      // parsed total, which perturbs the low bits whenever the decimal
      // round-trip of the sum is not exactly 1).
      d.cond = SparseDistribution::FromNormalizedPairs(std::move(entries));
    }
    dcfs.push_back(std::move(d));
  }
  return dcfs;
}

util::Status SaveDcfs(const std::vector<Dcf>& dcfs, const std::string& path) {
  return SaveDcfs(dcfs, DcfMeta(), path);
}

util::Status SaveDcfs(const std::vector<Dcf>& dcfs, const DcfMeta& meta,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::IoError("cannot open " + path);
  out << SerializeDcfs(dcfs, meta);
  if (!out) return util::Status::IoError("write failed: " + path);
  return util::Status::Ok();
}

util::Result<std::vector<Dcf>> LoadDcfs(const std::string& path) {
  return LoadDcfs(path, nullptr);
}

util::Result<std::vector<Dcf>> LoadDcfs(const std::string& path,
                                        DcfMeta* meta) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseDcfs(buf.str(), meta);
}

}  // namespace limbo::core
