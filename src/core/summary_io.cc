#include "core/summary_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace limbo::core {

namespace {
constexpr const char* kMagic = "limbo-dcf";
constexpr int kVersion = 1;
}  // namespace

std::string SerializeDcfs(const std::vector<Dcf>& dcfs) {
  std::string out = util::StrFormat("%s %d\n%zu\n", kMagic, kVersion,
                                    dcfs.size());
  for (const Dcf& d : dcfs) {
    out += util::StrFormat("p %.17g k %zu", d.p, d.cond.SupportSize());
    if (d.IsAdcf()) {
      out += util::StrFormat(" a %zu", d.attr_counts.size());
      for (uint64_t c : d.attr_counts) {
        out += util::StrFormat(" %" PRIu64, c);
      }
    }
    out += "\n";
    for (const auto& e : d.cond.entries()) {
      out += util::StrFormat("%u %.17g\n", e.id, e.mass);
    }
  }
  return out;
}

util::Result<std::vector<Dcf>> ParseDcfs(const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic) {
    return util::Status::InvalidArgument("not a limbo-dcf stream");
  }
  if (version != kVersion) {
    return util::Status::InvalidArgument(
        util::StrFormat("unsupported dcf version %d", version));
  }
  size_t count = 0;
  if (!(in >> count)) {
    return util::Status::InvalidArgument("missing summary count");
  }
  std::vector<Dcf> dcfs;
  dcfs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string tag;
    Dcf d;
    size_t support = 0;
    if (!(in >> tag >> d.p) || tag != "p") {
      return util::Status::InvalidArgument(
          util::StrFormat("summary %zu: expected 'p <mass>'", i));
    }
    if (!(in >> tag >> support) || tag != "k") {
      return util::Status::InvalidArgument(
          util::StrFormat("summary %zu: expected 'k <support>'", i));
    }
    // Optional ADCF block.
    if (in >> std::ws && in.peek() == 'a') {
      size_t m = 0;
      if (!(in >> tag >> m) || tag != "a") {
        return util::Status::InvalidArgument(
            util::StrFormat("summary %zu: malformed attr-count header", i));
      }
      d.attr_counts.resize(m);
      for (size_t a = 0; a < m; ++a) {
        if (!(in >> d.attr_counts[a])) {
          return util::Status::InvalidArgument(
              util::StrFormat("summary %zu: truncated attr counts", i));
        }
      }
    }
    std::vector<SparseDistribution::Entry> entries;
    entries.reserve(support);
    for (size_t e = 0; e < support; ++e) {
      uint32_t id = 0;
      double mass = 0.0;
      if (!(in >> id >> mass)) {
        return util::Status::InvalidArgument(
            util::StrFormat("summary %zu: truncated support", i));
      }
      entries.push_back({id, mass});
    }
    if (!entries.empty()) {
      d.cond = SparseDistribution::FromPairs(std::move(entries));
    }
    dcfs.push_back(std::move(d));
  }
  return dcfs;
}

util::Status SaveDcfs(const std::vector<Dcf>& dcfs, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::IoError("cannot open " + path);
  out << SerializeDcfs(dcfs);
  if (!out) return util::Status::IoError("write failed: " + path);
  return util::Status::Ok();
}

util::Result<std::vector<Dcf>> LoadDcfs(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseDcfs(buf.str());
}

}  // namespace limbo::core
