#include "core/decompose.h"

#include <algorithm>
#include <string>

#include "relation/ops.h"
#include "util/strings.h"

namespace limbo::core {

namespace {

using relation::AttributeId;
using relation::Relation;

util::Result<Relation> DistinctProjection(const Relation& rel,
                                          fd::AttributeSet attributes) {
  std::vector<AttributeId> list = attributes.ToList();
  LIMBO_ASSIGN_OR_RETURN(Relation projected, relation::Project(rel, list));
  return relation::Distinct(projected);
}

}  // namespace

util::Result<Decomposition> DecomposeOn(const Relation& rel,
                                        const fd::FunctionalDependency& f) {
  const size_t m = rel.NumAttributes();
  const fd::AttributeSet all = fd::AttributeSet::Full(m);
  const fd::AttributeSet s1_attrs = f.lhs.Union(f.rhs);
  const fd::AttributeSet s2_attrs = all.Minus(f.rhs.Minus(f.lhs));
  if (f.lhs.Empty() || f.rhs.Empty()) {
    return util::Status::InvalidArgument(
        "decomposition needs non-empty LHS and RHS");
  }
  if (!s1_attrs.IsSubsetOf(all)) {
    return util::Status::OutOfRange("FD mentions attributes outside the "
                                    "relation");
  }
  if (s2_attrs == all) {
    return util::Status::InvalidArgument(
        "RHS is contained in LHS; decomposition would be trivial");
  }
  if (!fd::Holds(rel, f)) {
    return util::Status::FailedPrecondition(
        "FD does not hold; decomposing on it would lose information");
  }

  Decomposition out;
  LIMBO_ASSIGN_OR_RETURN(out.s1, DistinctProjection(rel, s1_attrs));
  LIMBO_ASSIGN_OR_RETURN(out.s2, DistinctProjection(rel, s2_attrs));
  out.original_cells = rel.NumTuples() * m;
  out.decomposed_cells = out.s1.NumTuples() * out.s1.NumAttributes() +
                         out.s2.NumTuples() * out.s2.NumAttributes();
  out.storage_saving =
      out.original_cells == 0
          ? 0.0
          : 1.0 - static_cast<double>(out.decomposed_cells) /
                      static_cast<double>(out.original_cells);
  return out;
}

util::Result<bool> JoinsBackLosslessly(const Relation& rel,
                                       const fd::FunctionalDependency& f,
                                       const Decomposition& decomposition) {
  // Join S2 with S1 on the (shared) LHS attributes.
  std::vector<relation::JoinKey> keys;
  for (AttributeId a : f.lhs.ToList()) {
    keys.push_back({rel.schema().Name(a), rel.schema().Name(a)});
  }
  LIMBO_ASSIGN_OR_RETURN(
      Relation joined,
      relation::EquiJoin(decomposition.s2, decomposition.s1, keys));
  const Relation expected = relation::Distinct(rel);
  if (joined.NumTuples() != expected.NumTuples()) return false;

  // Compare as multisets of rows keyed by original attribute names.
  std::vector<AttributeId> joined_order;
  for (size_t a = 0; a < rel.NumAttributes(); ++a) {
    LIMBO_ASSIGN_OR_RETURN(AttributeId ja,
                           joined.schema().Find(rel.schema().Name(
                               static_cast<AttributeId>(a))));
    joined_order.push_back(ja);
  }
  auto row_key = [](const Relation& r,
                    relation::TupleId t,
                    const std::vector<AttributeId>& order) {
    std::string key;
    for (AttributeId a : order) {
      key += r.TextAt(t, a);
      key += '\x1f';
    }
    return key;
  };
  std::vector<AttributeId> identity;
  for (size_t a = 0; a < rel.NumAttributes(); ++a) {
    identity.push_back(static_cast<AttributeId>(a));
  }
  std::vector<std::string> lhs_rows;
  std::vector<std::string> rhs_rows;
  for (relation::TupleId t = 0; t < joined.NumTuples(); ++t) {
    lhs_rows.push_back(row_key(joined, t, joined_order));
  }
  for (relation::TupleId t = 0; t < expected.NumTuples(); ++t) {
    rhs_rows.push_back(row_key(expected, t, identity));
  }
  std::sort(lhs_rows.begin(), lhs_rows.end());
  std::sort(rhs_rows.begin(), rhs_rows.end());
  return lhs_rows == rhs_rows;
}

util::Result<std::vector<Relation>> DecomposeGreedily(
    const Relation& rel, const std::vector<fd::FunctionalDependency>& fds) {
  std::vector<Relation> fragments;
  fragments.push_back(relation::Distinct(rel));
  for (const fd::FunctionalDependency& f : fds) {
    // Find the fragment still containing all the FD's attributes.
    const std::vector<AttributeId> needed = f.lhs.Union(f.rhs).ToList();
    for (size_t i = 0; i < fragments.size(); ++i) {
      Relation& fragment = fragments[i];
      fd::AttributeSet local_lhs;
      fd::AttributeSet local_rhs;
      bool all_present = true;
      for (AttributeId a : needed) {
        auto found = fragment.schema().Find(rel.schema().Name(a));
        if (!found.ok()) {
          all_present = false;
          break;
        }
        if (f.lhs.Contains(a)) local_lhs = local_lhs.With(*found);
        if (f.rhs.Contains(a)) local_rhs = local_rhs.With(*found);
      }
      if (!all_present) continue;
      const fd::AttributeSet keep =
          fd::AttributeSet::Full(fragment.NumAttributes())
              .Minus(local_rhs.Minus(local_lhs));
      if (keep.Count() == fragment.NumAttributes() || local_rhs.Empty()) {
        break;  // nothing to split off
      }
      auto decomposition =
          DecomposeOn(fragment, {local_lhs, local_rhs});
      if (!decomposition.ok()) break;  // e.g. FD no longer informative
      Relation s1 = std::move(decomposition->s1);
      fragments[i] = std::move(decomposition->s2);
      fragments.push_back(std::move(s1));
      break;
    }
  }
  return fragments;
}

}  // namespace limbo::core
