#ifndef LIMBO_CORE_DECOMPOSE_H_
#define LIMBO_CORE_DECOMPOSE_H_

#include <vector>

#include "fd/fd.h"
#include "relation/relation.h"
#include "util/result.h"

namespace limbo::core {

/// Result of a binary vertical decomposition of R on an FD X → Y:
///   S1 = π_{X ∪ Y}(R)   (distinct),
///   S2 = π_{R − Y}(R)   (distinct).
/// The decomposition is lossless because X → Y makes X a key of S1.
struct Decomposition {
  relation::Relation s1;
  relation::Relation s2;
  /// Cell counts before/after: |R|·m vs |S1|·m1 + |S2|·m2.
  size_t original_cells = 0;
  size_t decomposed_cells = 0;
  /// 1 − decomposed/original (positive = the decomposition stores less).
  double storage_saving = 0.0;
};

/// Decomposes `rel` on `f` (which must hold in `rel` and must leave at
/// least one attribute on each side).
util::Result<Decomposition> DecomposeOn(const relation::Relation& rel,
                                        const fd::FunctionalDependency& f);

/// Verifies losslessness: S1 ⋈ S2 (natural join on X) reproduces exactly
/// the distinct tuples of `rel`. Used by tests and by cautious callers.
util::Result<bool> JoinsBackLosslessly(const relation::Relation& rel,
                                       const fd::FunctionalDependency& f,
                                       const Decomposition& decomposition);

/// Applies FD-ranked decompositions greedily: decomposes on `fds` in the
/// given order, skipping any FD whose attributes are no longer together
/// in one fragment, and returns the resulting fragment relations.
///
/// This is the "physical data-design tool" use the paper sketches: feed
/// it the FD-RANK output and it produces a normalized-ish design whose
/// fragments duplicate less.
util::Result<std::vector<relation::Relation>> DecomposeGreedily(
    const relation::Relation& rel,
    const std::vector<fd::FunctionalDependency>& fds);

}  // namespace limbo::core

#endif  // LIMBO_CORE_DECOMPOSE_H_
