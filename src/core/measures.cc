#include "core/measures.h"

#include <cmath>
#include <unordered_map>
#include <vector>

#include "core/info.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "relation/ops.h"

namespace limbo::core {

namespace {

/// Multiplicities of the distinct projected rows.
std::vector<uint64_t> ProjectedCounts(
    const relation::Relation& rel,
    const std::vector<relation::AttributeId>& attributes) {
  // Hash rows to buckets; verify equality against a representative.
  struct Group {
    relation::TupleId representative;
    uint64_t count;
  };
  std::unordered_map<uint64_t, std::vector<Group>> buckets;
  auto hash_row = [&](relation::TupleId t) {
    uint64_t h = 1469598103934665603ULL;
    for (relation::AttributeId a : attributes) {
      h ^= rel.At(t, a);
      h *= 1099511628211ULL;
    }
    return h;
  };
  auto equal_rows = [&](relation::TupleId x, relation::TupleId y) {
    for (relation::AttributeId a : attributes) {
      if (rel.At(x, a) != rel.At(y, a)) return false;
    }
    return true;
  };
  for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
    auto& bucket = buckets[hash_row(t)];
    bool placed = false;
    for (Group& g : bucket) {
      if (equal_rows(g.representative, t)) {
        ++g.count;
        placed = true;
        break;
      }
    }
    if (!placed) bucket.push_back({t, 1});
  }
  std::vector<uint64_t> counts;
  for (const auto& [h, groups] : buckets) {
    for (const Group& g : groups) counts.push_back(g.count);
  }
  return counts;
}

}  // namespace

double Rad(const relation::Relation& rel,
           const std::vector<relation::AttributeId>& attributes) {
  const size_t n = rel.NumTuples();
  if (n <= 1) return 1.0;
  LIMBO_OBS_SPAN(rad_span, "rad");
  LIMBO_OBS_COUNT("measures.rad_evals", 1);
  const std::vector<uint64_t> counts = ProjectedCounts(rel, attributes);
  const double h = EntropyOfCounts(counts);
  return 1.0 - h / std::log2(static_cast<double>(n));
}

double Rtr(const relation::Relation& rel,
           const std::vector<relation::AttributeId>& attributes) {
  const size_t n = rel.NumTuples();
  if (n == 0) return 0.0;
  LIMBO_OBS_SPAN(rtr_span, "rtr");
  LIMBO_OBS_COUNT("measures.rtr_evals", 1);
  const size_t distinct =
      relation::CountDistinctProjected(rel, attributes);
  return 1.0 - static_cast<double>(distinct) / static_cast<double>(n);
}

}  // namespace limbo::core
