#include "core/aib.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/counters.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace limbo::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Dense symmetric distance store over active cluster *slots*. Merged
/// clusters reuse the slot of their left input; the right slot is retired.
class SlotMatrix {
 public:
  explicit SlotMatrix(size_t q) : q_(q), d_(q * q, 0.0) {}

  double Get(size_t i, size_t j) const { return d_[i * q_ + j]; }
  void Set(size_t i, size_t j, double v) {
    d_[i * q_ + j] = v;
    d_[j * q_ + i] = v;
  }

 private:
  size_t q_;
  std::vector<double> d_;
};

}  // namespace

util::Result<AibResult> AgglomerativeIb(const std::vector<Dcf>& inputs,
                                        const AibOptions& options) {
  const size_t q = inputs.size();
  if (q == 0) {
    return util::Status::InvalidArgument("AIB needs >= 1 input cluster");
  }
  if (options.min_k < 1 || options.min_k > q) {
    return util::Status::InvalidArgument(
        util::StrFormat("min_k=%zu out of range [1, %zu]", options.min_k, q));
  }

  LIMBO_OBS_SPAN(aib_span, "aib");
  util::ThreadPool pool(options.threads);
  AibStats stats;
  stats.threads = pool.threads();
  // Chunk size for the row-indexed scans below; small enough that the
  // round-robin chunk->lane mapping balances the triangular initial build.
  constexpr size_t kGrain = 16;

  const bool batch = options.kernel == AibOptions::DistanceKernel::kBatch;

  // Per-slot state. slot_cluster_id maps a live slot to its global cluster
  // id (scipy convention). In batch mode the conditionals live as arena
  // rows (slot_row indexes them) with slot_p alongside; in per-pair mode
  // slot_dcf holds the merged statistics as before. Either way the
  // conditional masses are bit-identical (AppendMerge replicates
  // WeightedMerge's expressions), so the two modes agree exactly.
  std::vector<Dcf> slot_dcf;
  DistributionArena arena;
  std::vector<size_t> slot_row;
  std::vector<double> slot_p(q);
  for (size_t i = 0; i < q; ++i) slot_p[i] = inputs[i].p;
  if (batch) {
    size_t total_entries = 0;
    for (const Dcf& in : inputs) total_entries += in.cond.SupportSize();
    // Merged rows append behind the inputs; 2x covers the whole
    // dendrogram in the common case without a mid-run realloc.
    arena.ReserveEntries(total_entries * 2);
    slot_row.resize(q);
    for (size_t i = 0; i < q; ++i) slot_row[i] = arena.Append(inputs[i].cond);
  } else {
    slot_dcf = inputs;
  }
  // One δI kernel per lane: the static chunk->lane mapping means each
  // kernel sees the same rows on every run, so results stay bit-identical
  // at any thread count.
  std::vector<LossKernel> kernels(pool.threads());

  std::vector<uint32_t> slot_cluster_id(q);
  std::vector<bool> alive(q, true);
  for (size_t i = 0; i < q; ++i) slot_cluster_id[i] = static_cast<uint32_t>(i);

  SlotMatrix dist(q);
  // Nearest-neighbour cache: nn[i] = best partner slot for slot i.
  std::vector<size_t> nn(q, SIZE_MAX);
  std::vector<double> nn_dist(q, kInf);

  // Equal distances tie-break on *cluster ids*, never slot indices: after
  // merges recycle slots, slot order and cluster-id order disagree, and
  // only the latter matches the documented (and global-selection) order.
  auto recompute_nn = [&](size_t i) {
    nn[i] = SIZE_MAX;
    nn_dist[i] = kInf;
    for (size_t j = 0; j < q; ++j) {
      if (j == i || !alive[j]) continue;
      const double d = dist.Get(i, j);
      if (d < nn_dist[i] ||
          (d == nn_dist[i] &&
           (nn[i] == SIZE_MAX ||
            slot_cluster_id[j] < slot_cluster_id[nn[i]]))) {
        nn_dist[i] = d;
        nn[i] = j;
      }
    }
  };

  // Initial pairwise matrix and NN cache. Every (i, j) writes cells owned
  // by that pair alone, so the static partition is bit-deterministic.
  LIMBO_OBS_SPAN(build_span, "matrix_build");
  pool.ParallelFor(0, q, kGrain, [&](size_t lo, size_t hi, size_t lane) {
    if (batch) {
      LossKernel& kernel = kernels[lane];
      for (size_t i = lo; i < hi; ++i) {
        kernel.SetObject(slot_p[i], arena.Row(slot_row[i]));
        for (size_t j = i + 1; j < q; ++j) {
          dist.Set(i, j, kernel.Loss(slot_p[j], arena.Row(slot_row[j])));
        }
      }
    } else {
      for (size_t i = lo; i < hi; ++i) {
        for (size_t j = i + 1; j < q; ++j) {
          dist.Set(i, j, InformationLoss(slot_dcf[i], slot_dcf[j]));
        }
      }
    }
  });
  pool.ParallelFor(0, q, kGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) recompute_nn(i);
  });
  stats.distance_evals += static_cast<uint64_t>(q) * (q - 1) / 2;
  build_span.Stop();

  LIMBO_OBS_SPAN(merge_span, "merge_loop");
  std::vector<Merge> merges;
  merges.reserve(q - options.min_k);
  double cumulative = 0.0;
  size_t live = q;
  uint32_t next_cluster_id = static_cast<uint32_t>(q);

  while (live > options.min_k) {
    // Pick the globally best pair; equal distances break on the
    // lexicographically smallest (min cluster id, max cluster id) pair.
    size_t best_i = SIZE_MAX;
    double best_d = kInf;
    uint32_t best_lo = 0;
    uint32_t best_hi = 0;
    for (size_t i = 0; i < q; ++i) {
      if (!alive[i] || nn[i] == SIZE_MAX) continue;
      const double d = nn_dist[i];
      const uint32_t lo =
          std::min(slot_cluster_id[i], slot_cluster_id[nn[i]]);
      const uint32_t hi =
          std::max(slot_cluster_id[i], slot_cluster_id[nn[i]]);
      if (d < best_d ||
          (d == best_d &&
           (best_i == SIZE_MAX || lo < best_lo ||
            (lo == best_lo && hi < best_hi)))) {
        best_d = d;
        best_i = i;
        best_lo = lo;
        best_hi = hi;
      }
    }
    LIMBO_CHECK(best_i != SIZE_MAX);
    // Orient the pair by cluster id so the recorded merge and the slot
    // the result lands in are independent of which side found it.
    size_t a = best_i;
    size_t b = nn[best_i];
    if (slot_cluster_id[b] < slot_cluster_id[a]) std::swap(a, b);
    LIMBO_CHECK(alive[a] && alive[b] && a != b);

    const double delta = dist.Get(a, b);
    cumulative += delta;
    // Merge per Eq. 1/2. The batch arm writes the merged conditional
    // straight into arena scratch with the same per-entry arithmetic as
    // MergeDcf/WeightedMerge.
    double p_merged = slot_p[a] + slot_p[b];
    if (batch) {
      if (p_merged <= 0.0) {
        p_merged = 0.0;
        slot_row[a] = arena.Append(DistributionView{});
      } else {
        slot_row[a] = arena.AppendMerge(slot_p[a] / p_merged, slot_row[a],
                                        slot_p[b] / p_merged, slot_row[b]);
      }
    } else {
      slot_dcf[a] = MergeDcf(slot_dcf[a], slot_dcf[b]);
      p_merged = slot_dcf[a].p;
    }
    slot_p[a] = p_merged;
    merges.push_back(Merge{slot_cluster_id[a], slot_cluster_id[b],
                           next_cluster_id, delta, cumulative, p_merged});

    // The merged cluster takes slot a; slot b dies.
    slot_cluster_id[a] = next_cluster_id++;
    alive[b] = false;
    --live;

    // Refresh distances from the merged slot and fix stale NN entries.
    // Each j owns its dist cells and nn/nn_dist slots, so both scans are
    // safely data-parallel and bit-identical to the serial order. The
    // per-merge tag lets each lane scatter the merged row at most once.
    const uint64_t refresh_tag = next_cluster_id;
    pool.ParallelFor(0, q, kGrain, [&](size_t lo, size_t hi, size_t lane) {
      if (batch) {
        LossKernel& kernel = kernels[lane];
        kernel.SetObject(slot_p[a], arena.Row(slot_row[a]), refresh_tag);
        for (size_t j = lo; j < hi; ++j) {
          if (!alive[j] || j == a) continue;
          dist.Set(a, j, kernel.Loss(slot_p[j], arena.Row(slot_row[j])));
        }
      } else {
        for (size_t j = lo; j < hi; ++j) {
          if (!alive[j] || j == a) continue;
          dist.Set(a, j, InformationLoss(slot_dcf[a], slot_dcf[j]));
        }
      }
    });
    stats.distance_evals += live - 1;
    recompute_nn(a);
    pool.ParallelFor(0, q, kGrain, [&](size_t lo, size_t hi) {
      // NN-cache economics per surviving slot: a full recompute_nn is a
      // miss, keeping or cheaply lowering the cached partner is a hit.
      // Both totals depend only on the merge sequence, not thread count.
      uint64_t hits = 0;
      uint64_t misses = 0;
      for (size_t j = lo; j < hi; ++j) {
        if (!alive[j] || j == a) continue;
        if (nn[j] == a || nn[j] == b) {
          recompute_nn(j);
          ++misses;
        } else {
          if (dist.Get(a, j) < nn_dist[j]) {
            // Strict < keeps the incumbent on ties: the merged cluster has
            // the largest id, so cluster-id order agrees.
            nn[j] = a;
            nn_dist[j] = dist.Get(a, j);
          }
          ++hits;
        }
      }
      LIMBO_OBS_COUNT("aib.nn_cache.hits", hits);
      LIMBO_OBS_COUNT("aib.nn_cache.misses", misses);
    });
  }
  merge_span.Stop();

  AibResult result(q, std::move(merges));
  LIMBO_OBS_COUNT("aib.inputs", q);
  LIMBO_OBS_COUNT("aib.merges", result.merges().size());
  LIMBO_OBS_COUNT("aib.distance_evals", stats.distance_evals);
  FlushKernelStats(kernels, "aib.kernel");
  stats.seconds = aib_span.Stop();
  result.set_stats(stats);
  return result;
}

util::Result<std::vector<uint32_t>> AibResult::AssignmentsAtK(size_t k) const {
  if (k < FinalK() || k > num_objects_) {
    return util::Status::OutOfRange(
        util::StrFormat("k=%zu out of range [%zu, %zu]", k, FinalK(),
                        num_objects_));
  }
  // Union-find over cluster ids, replaying the first (q - k) merges.
  const size_t steps = num_objects_ - k;
  std::vector<uint32_t> parent(num_objects_ + steps);
  for (size_t i = 0; i < parent.size(); ++i) {
    parent[i] = static_cast<uint32_t>(i);
  }
  for (size_t s = 0; s < steps; ++s) {
    parent[merges_[s].left] = merges_[s].merged;
    parent[merges_[s].right] = merges_[s].merged;
  }
  auto find_root = [&](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::vector<uint32_t> labels(num_objects_);
  std::vector<int64_t> root_to_label(parent.size(), -1);
  uint32_t next_label = 0;
  for (size_t i = 0; i < num_objects_; ++i) {
    const uint32_t root = find_root(static_cast<uint32_t>(i));
    if (root_to_label[root] < 0) root_to_label[root] = next_label++;
    labels[i] = static_cast<uint32_t>(root_to_label[root]);
  }
  LIMBO_CHECK(next_label == k);
  return labels;
}

util::Result<double> AibResult::LossAtK(size_t k) const {
  if (k < FinalK() || k > num_objects_) {
    return util::Status::OutOfRange(
        util::StrFormat("k=%zu out of range [%zu, %zu]", k, FinalK(),
                        num_objects_));
  }
  const size_t steps = num_objects_ - k;
  return steps == 0 ? 0.0 : merges_[steps - 1].cumulative_loss;
}

std::vector<double> AibResult::ClusterEntropyPerStep(
    const std::vector<Dcf>& inputs) const {
  LIMBO_CHECK(inputs.size() == num_objects_);
  // Track cluster masses as merges are applied; entropy updated
  // incrementally: merging masses x and y changes H(C) by
  //   +x log x + y log y - (x+y) log(x+y)  (all divided into bits).
  auto plogp = [](double x) {
    return x > 0.0 ? x * std::log2(x) : 0.0;
  };
  std::vector<double> mass(num_objects_ + merges_.size(), 0.0);
  double h = 0.0;
  for (size_t i = 0; i < num_objects_; ++i) {
    mass[i] = inputs[i].p;
    h -= plogp(inputs[i].p);
  }
  std::vector<double> out;
  out.reserve(merges_.size() + 1);
  out.push_back(h);
  for (const Merge& m : merges_) {
    const double x = mass[m.left];
    const double y = mass[m.right];
    mass[m.merged] = x + y;
    h += plogp(x) + plogp(y) - plogp(x + y);
    out.push_back(h);
  }
  return out;
}

util::Result<std::vector<Dcf>> ClusterDcfsAtK(const std::vector<Dcf>& inputs,
                                              const AibResult& result,
                                              size_t k) {
  LIMBO_ASSIGN_OR_RETURN(std::vector<uint32_t> labels,
                         result.AssignmentsAtK(k));
  if (inputs.size() != labels.size()) {
    return util::Status::InvalidArgument("inputs/result size mismatch");
  }
  return MergeDcfsByLabel(inputs, labels, k);
}

util::Result<std::vector<Dcf>> MergeDcfsByLabel(
    const std::vector<Dcf>& objects, const std::vector<uint32_t>& labels,
    size_t k) {
  if (objects.size() != labels.size()) {
    return util::Status::InvalidArgument("objects/labels size mismatch");
  }
  std::vector<Dcf> clusters(k);
  std::vector<bool> seen(k, false);
  for (size_t i = 0; i < objects.size(); ++i) {
    const uint32_t label = labels[i];
    if (label >= k) {
      return util::Status::InvalidArgument(
          util::StrFormat("label %u out of range [0, %zu)", label, k));
    }
    if (!seen[label]) {
      clusters[label] = objects[i];
      seen[label] = true;
    } else {
      clusters[label] = MergeDcf(clusters[label], objects[i]);
    }
  }
  return clusters;
}

}  // namespace limbo::core
