#ifndef LIMBO_CORE_VALUE_CLUSTERING_H_
#define LIMBO_CORE_VALUE_CLUSTERING_H_

#include <vector>

#include "core/limbo.h"
#include "relation/relation.h"
#include "util/result.h"

namespace limbo::core {

/// Builds the attribute-value objects of Section 6.2 — the rows of matrix
/// N extended with their O-matrix row as ADCF counts. Value v has prior
/// p(v) = 1/d, conditional p(T|v) uniform (1/d_v) over the tuples it
/// occurs in, and attr_counts[a] = d_v at its own attribute (0 elsewhere).
std::vector<Dcf> BuildValueObjects(const relation::Relation& rel);

/// Double Clustering (Section 6.2): values expressed over tuple *clusters*
/// rather than tuples. `tuple_labels[t]` is the cluster of tuple t;
/// p(c|v) = (occurrences of v in cluster c) / d_v.
std::vector<Dcf> BuildValueObjectsOverTupleClusters(
    const relation::Relation& rel, const std::vector<uint32_t>& tuple_labels,
    size_t num_tuple_clusters);

struct ValueClusteringOptions {
  /// φ_V: 0.0 groups only perfectly co-occurring values; > 0 tolerates
  /// "almost" perfect co-occurrence (entry errors).
  double phi_v = 0.0;
  int branching = 4;
  int leaf_capacity = 0;
  /// Optional Double Clustering input: when non-null, values are expressed
  /// over these tuple-cluster labels (`num_tuple_clusters` many).
  const std::vector<uint32_t>* tuple_labels = nullptr;
  size_t num_tuple_clusters = 0;
};

/// A group of co-occurring attribute values (one Phase-1 leaf ADCF).
struct ValueGroup {
  /// Member value ids, recovered by Phase-3 association.
  std::vector<relation::ValueId> values;
  /// The group's ADCF: conditional over tuples (or tuple clusters) and
  /// the summed O-matrix row in attr_counts.
  Dcf dcf;
  /// True iff the group belongs to CV_D: it occurs in at least two tuples
  /// and spans at least two attributes (Section 6.3).
  bool is_duplicate = false;
};

struct ValueClusteringResult {
  std::vector<ValueGroup> groups;
  /// Indices into `groups` of the CV_D members.
  std::vector<size_t> duplicate_groups;
  double mutual_information = 0.0;
  double threshold = 0.0;
};

/// Runs the three passes of Section 6.2: build N and O, Phase 1 at φ_V,
/// and Phase 3 association of every value with its closest leaf ADCF.
util::Result<ValueClusteringResult> ClusterValues(
    const relation::Relation& rel, const ValueClusteringOptions& options);

}  // namespace limbo::core

#endif  // LIMBO_CORE_VALUE_CLUSTERING_H_
