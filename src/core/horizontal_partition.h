#ifndef LIMBO_CORE_HORIZONTAL_PARTITION_H_
#define LIMBO_CORE_HORIZONTAL_PARTITION_H_

#include <vector>

#include "core/dcf_stream.h"
#include "core/limbo.h"
#include "relation/relation.h"
#include "util/result.h"

namespace limbo::core {

struct HorizontalPartitionOptions {
  /// φ_T for the Phase-1 summarization. The paper picks a φ that leaves
  /// on the order of 100 summaries.
  double phi = 0.5;
  int branching = 4;
  int leaf_capacity = 0;
  /// Number of partitions; 0 chooses k automatically with the δI/δH knee
  /// heuristic of Section 6.1.2.
  size_t k = 0;
  /// Search range for the automatic k (inclusive).
  size_t min_k = 2;
  size_t max_k = 10;
  /// Worker lanes for the clustering hot paths (0 = default lane count,
  /// 1 = serial; results bit-identical).
  size_t threads = 0;
  /// Objects per stream chunk for the scans (memory knob only; every
  /// value is bit-identical). 0 = the LimboOptions default.
  size_t stream_chunk = 0;
};

/// Statistics of the k-clustering, for the paper's "rate of change"
/// heuristic.
struct ClusteringStats {
  size_t k = 0;
  /// δI: information lost by the merge that goes from k to k-1 clusters.
  double delta_i = 0.0;
  /// I(C_k;V) as a fraction of I(T;V) over the leaves.
  double info_retained = 0.0;
  /// H(C_k), entropy of the cluster prior.
  double cluster_entropy = 0.0;
  /// H(C_k | V) = H(C_k) − I(C_k;V).
  double conditional_entropy = 0.0;
};

struct HorizontalPartitionResult {
  size_t chosen_k = 0;
  /// Candidate "natural" k values in [min_k, max_k], best first, ranked
  /// by the relative δI jump — the paper's heuristic surfaces several
  /// good k values for the analyst to inspect; chosen_k is the first.
  std::vector<size_t> candidate_ks;
  /// Stats for k = min(max_k, #leaves) down to 1 (descending k).
  std::vector<ClusteringStats> stats;
  /// Phase-3 cluster label per tuple.
  std::vector<uint32_t> assignments;
  std::vector<size_t> cluster_sizes;
  /// Distinct attribute values occurring in each cluster (Table 4).
  std::vector<size_t> cluster_value_counts;
  /// (I(T;V) − I(C;V)) / I(T;V) after Phase 3: loss relative to the raw
  /// tuple-level information (necessarily large for small k, since
  /// near-unique tuples carry ~log2(n) bits).
  double info_loss_fraction = 0.0;
  /// Loss relative to the Phase-1 summaries, (I_leaves − I(C;V)) /
  /// I_leaves — the accounting that matches the paper's "loss of initial
  /// information after Phase 3 was 9.45%".
  double info_loss_vs_leaves = 0.0;
  double mutual_information = 0.0;
  size_t num_leaves = 0;
  /// Per-phase wall time of the underlying LIMBO run.
  PhaseTimings timings;
};

/// Horizontal partitioning (Section 6.1.2): full LIMBO clustering of the
/// tuples, k picked by the largest relative jump in δI within
/// [min_k, max_k] (merges below a natural k cost disproportionately more),
/// then Phase-3 assignment of every tuple. Thin adapter that routes the
/// materialized tuple objects through HorizontallyPartitionStream.
util::Result<HorizontalPartitionResult> HorizontallyPartition(
    const relation::Relation& rel, const HorizontalPartitionOptions& options);

/// The same partitioning over a rewindable stream of tuple objects
/// (core::TupleObjectStream for bounded-memory ingest): a streamed
/// k = 0 LIMBO run, the choice-of-k heuristic, a Phase-3 re-scan for the
/// labels, and one final scan for the per-cluster statistics (sizes,
/// distinct-value counts from each object's conditional support, and the
/// label-merged DCFs behind the info-loss fractions). Bit-identical to
/// HorizontallyPartition at every thread count and chunk size.
util::Result<HorizontalPartitionResult> HorizontallyPartitionStream(
    DcfStream& objects, const HorizontalPartitionOptions& options);

}  // namespace limbo::core

#endif  // LIMBO_CORE_HORIZONTAL_PARTITION_H_
