#include "core/tuple_clustering.h"

#include <algorithm>

#include "core/info.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace limbo::core {

std::vector<Dcf> BuildTupleObjects(const relation::Relation& rel) {
  const size_t n = rel.NumTuples();
  std::vector<Dcf> objects;
  objects.reserve(n);
  for (relation::TupleId t = 0; t < n; ++t) {
    Dcf d;
    d.p = 1.0 / static_cast<double>(n);
    // A tuple may repeat a value id across attributes only if two columns
    // share the same (attribute, text) pair — impossible since values are
    // attribute-qualified, so the row is always m distinct ids.
    d.cond = SparseDistribution::UniformOver(rel.Row(t));
    objects.push_back(std::move(d));
  }
  return objects;
}

util::Result<DuplicateTupleReport> FindDuplicateTuples(
    const relation::Relation& rel, const DuplicateTupleOptions& options) {
  const size_t n = rel.NumTuples();
  if (n == 0) {
    return util::Status::InvalidArgument("relation is empty");
  }
  LIMBO_OBS_SPAN(dup_span, "tuple_clustering");
  const std::vector<Dcf> objects = BuildTupleObjects(rel);

  WeightedRows rows;
  rows.weights.reserve(n);
  rows.rows.reserve(n);
  for (const Dcf& o : objects) {
    rows.weights.push_back(o.p);
    rows.rows.push_back(o.cond);
  }

  DuplicateTupleReport report;
  report.mutual_information = MutualInformation(rows);
  report.threshold =
      options.phi_t * report.mutual_information / static_cast<double>(n);

  LimboOptions limbo_options;
  limbo_options.phi = options.phi_t;
  limbo_options.branching = options.branching;
  limbo_options.leaf_capacity = options.leaf_capacity;
  const std::vector<Dcf> leaves =
      LimboPhase1(objects, limbo_options, report.threshold);
  report.num_leaves = leaves.size();

  // Heavy summaries: leaves that absorbed more than one tuple.
  std::vector<Dcf> heavy;
  const double single = 1.0 / static_cast<double>(n);
  for (const Dcf& leaf : leaves) {
    if (leaf.p > single * 1.5) heavy.push_back(leaf);
  }
  report.num_heavy_leaves = heavy.size();
  if (heavy.empty()) return report;

  std::vector<double> losses;
  LIMBO_ASSIGN_OR_RETURN(std::vector<uint32_t> labels,
                         LimboPhase3(objects, heavy, &losses));
  std::vector<DuplicateTupleGroup> groups(heavy.size());
  for (size_t g = 0; g < heavy.size(); ++g) {
    groups[g].summary_mass = heavy[g].p;
  }
  const double accept =
      options.association_margin * report.threshold + 1e-12;
  uint64_t accepted = 0;
  for (relation::TupleId t = 0; t < n; ++t) {
    if (losses[t] <= accept) {
      groups[labels[t]].tuples.push_back(t);
      ++accepted;
    }
  }
  // The Phase-3 scan assigns every tuple somewhere; the association
  // margin then rejects loose fits back to singleton status.
  LIMBO_OBS_COUNT("tuple_clustering.assigned", accepted);
  LIMBO_OBS_COUNT("tuple_clustering.rejected", n - accepted);
  for (DuplicateTupleGroup& g : groups) {
    if (g.tuples.size() >= 2) report.groups.push_back(std::move(g));
  }
  std::sort(report.groups.begin(), report.groups.end(),
            [](const DuplicateTupleGroup& a, const DuplicateTupleGroup& b) {
              return a.tuples.size() > b.tuples.size();
            });
  return report;
}

}  // namespace limbo::core
