#ifndef LIMBO_CORE_STRUCTURE_SUMMARY_H_
#define LIMBO_CORE_STRUCTURE_SUMMARY_H_

#include <string>
#include <vector>

#include "core/attribute_grouping.h"
#include "core/fd_rank.h"
#include "core/tuple_clustering.h"
#include "core/value_clustering.h"
#include "relation/stats.h"
#include "util/result.h"

namespace limbo::core {

/// One-call configuration for the full structure-discovery pipeline.
struct StructureSummaryOptions {
  /// Tuple-clustering accuracy for duplicate detection.
  double phi_t = 0.1;
  /// Value-clustering accuracy (0 = perfect co-occurrence only).
  double phi_v = 0.0;
  /// FD-RANK threshold.
  double psi = 0.5;
  /// Above this tuple count, FDs are mined with TANE instead of FDEP and
  /// Double Clustering is used for the value stage.
  size_t large_relation_threshold = 2000;
  /// φ_T for the Double-Clustering tuple summaries on large relations.
  double phi_t_double_clustering = 0.5;
};

/// Everything the paper's tools derive from one relation — the compact
/// summary an analyst would browse (Sections 6-7 in one object).
struct StructureSummary {
  relation::RelationProfile profile;
  DuplicateTupleReport duplicates;
  ValueClusteringResult values;
  /// Present only when CV_D is non-empty.
  bool has_grouping = false;
  AttributeGroupingResult grouping;
  size_t num_fds = 0;
  std::vector<RankedFd> ranked_cover;

  /// Full analyst report as text.
  std::string ToString(const relation::Relation& rel) const;
};

/// Runs profiling, duplicate-tuple detection, value clustering (with
/// Double Clustering on large inputs), attribute grouping, FD discovery
/// (FDEP or TANE by size), minimum cover and FD-RANK.
util::Result<StructureSummary> SummarizeStructure(
    const relation::Relation& rel,
    const StructureSummaryOptions& options = StructureSummaryOptions());

}  // namespace limbo::core

#endif  // LIMBO_CORE_STRUCTURE_SUMMARY_H_
