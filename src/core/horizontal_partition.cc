#include "core/horizontal_partition.h"

#include <algorithm>
#include <unordered_set>

#include "core/info.h"
#include "core/tuple_clustering.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace limbo::core {

namespace {

/// One full pass over the stream applying `fn` to (object, global index),
/// then a rewind.
template <typename Fn>
util::Status ScanIndexed(DcfStream& objects, size_t chunk, Fn&& fn) {
  size_t index = 0;
  while (true) {
    LIMBO_ASSIGN_OR_RETURN(std::span<const Dcf> part,
                           objects.NextChunk(chunk));
    if (part.empty()) break;
    for (const Dcf& object : part) fn(object, index++);
  }
  return objects.Reset();
}

}  // namespace

util::Result<HorizontalPartitionResult> HorizontallyPartitionStream(
    DcfStream& objects, const HorizontalPartitionOptions& options) {
  const size_t n = objects.size();
  if (n == 0) return util::Status::InvalidArgument("relation is empty");
  if (options.min_k < 1 || options.min_k > options.max_k) {
    return util::Status::InvalidArgument("need 1 <= min_k <= max_k");
  }

  LIMBO_OBS_SPAN(partition_span, "horizontal_partition");

  LimboOptions limbo_options;
  limbo_options.phi = options.phi;
  limbo_options.branching = options.branching;
  limbo_options.leaf_capacity = options.leaf_capacity;
  limbo_options.k = 0;  // full dendrogram; we pick k ourselves
  limbo_options.threads = options.threads;
  if (options.stream_chunk > 0) {
    limbo_options.stream_chunk = options.stream_chunk;
  }
  const size_t chunk = limbo_options.stream_chunk;
  LIMBO_ASSIGN_OR_RETURN(LimboResult limbo,
                         RunLimboStreamed(objects, limbo_options));

  HorizontalPartitionResult result;
  result.mutual_information = limbo.mutual_information;
  result.num_leaves = limbo.leaves.size();
  result.timings = limbo.timings;

  // I(C_leaves; V): information still present after Phase 1.
  WeightedRows leaf_rows;
  for (const Dcf& leaf : limbo.leaves) {
    leaf_rows.weights.push_back(leaf.p);
    leaf_rows.rows.push_back(leaf.cond);
  }
  const double leaf_info = MutualInformation(leaf_rows);

  // Per-k statistics from the merge sequence (k descending).
  const auto& merges = limbo.aib.merges();
  const std::vector<double> cluster_entropy =
      limbo.aib.ClusterEntropyPerStep(limbo.leaves);
  const size_t q = limbo.leaves.size();
  const size_t k_hi = std::min(options.max_k, q);
  for (size_t k = k_hi; k >= 1; --k) {
    ClusteringStats s;
    s.k = k;
    // Merge that goes k -> k-1 is merge index (q - k); cumulative loss at
    // k clusters is merges[q - k - 1].cumulative_loss.
    const size_t steps_done = q - k;
    const double cum =
        steps_done == 0 ? 0.0 : merges[steps_done - 1].cumulative_loss;
    s.delta_i = (steps_done < merges.size()) ? merges[steps_done].delta_i : 0.0;
    const double info_k = leaf_info - cum;
    s.info_retained =
        limbo.mutual_information > 0.0 ? info_k / limbo.mutual_information
                                       : 1.0;
    s.cluster_entropy = cluster_entropy[steps_done];
    s.conditional_entropy = s.cluster_entropy - info_k;
    if (s.conditional_entropy < 0.0) s.conditional_entropy = 0.0;
    result.stats.push_back(s);
    if (k == 1) break;
  }

  // Rank candidate ks by the relative δI jump — merging below a natural
  // k costs much more than the merge that reached k. The paper's
  // heuristic yields *candidate* good clusterings for inspection; we
  // surface the ranked list and pick the best when no explicit k given.
  {
    std::vector<std::pair<double, size_t>> scored;
    const size_t lo = std::max<size_t>(options.min_k, 2);
    for (const ClusteringStats& s : result.stats) {
      if (s.k < lo || s.k > k_hi) continue;
      const size_t steps_done = q - s.k;
      const double next_delta =
          steps_done > 0 ? merges[steps_done - 1].delta_i : 0.0;
      scored.push_back({s.delta_i / (next_delta + 1e-12), s.k});
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [score, k] : scored) result.candidate_ks.push_back(k);
  }
  size_t chosen = options.k;
  if (chosen == 0) {
    chosen = result.candidate_ks.empty() ? 1 : result.candidate_ks.front();
  }
  chosen = std::min(chosen, q);
  result.chosen_k = chosen;

  // Phase 2 representatives at the chosen k + Phase 3 assignment re-scan.
  // RunLimboStreamed above ran with k = 0 (Phase 3 skipped), so the copied
  // timings carried phase3_ran = false with zeroed fields; time the manual
  // Phase 3 here so the reported record reflects what actually executed.
  {
    LIMBO_OBS_SPAN(phase3_span, "phase3");
    LIMBO_ASSIGN_OR_RETURN(std::vector<Dcf> reps,
                           ClusterDcfsAtK(limbo.leaves, limbo.aib, chosen));
    Phase3Assigner assigner(reps, options.threads);
    result.assignments.resize(n);
    size_t base = 0;
    while (true) {
      LIMBO_ASSIGN_OR_RETURN(std::span<const Dcf> part,
                             objects.NextChunk(chunk));
      if (part.empty()) break;
      assigner.AssignChunk(part, result.assignments.data() + base, nullptr);
      base += part.size();
    }
    assigner.Flush();
    util::Status reset = objects.Reset();
    if (!reset.ok()) return reset;
    ++result.timings.phase3_source_rescans;
    result.timings.phase3_seconds = phase3_span.Stop();
    result.timings.phase3_distance_evals =
        static_cast<uint64_t>(n) * reps.size();
    result.timings.phase3_ran = true;
  }

  // One statistics re-scan: cluster sizes, distinct-value counts (a tuple
  // object's conditional support is exactly its row's value-id set), and
  // the label-merged cluster DCFs — accumulated in stream order with the
  // first-copy-then-MergeDcf sequence of MergeDcfsByLabel, so the merged
  // DCFs match the materialized path bit for bit.
  result.cluster_sizes.assign(chosen, 0);
  std::vector<std::unordered_set<uint32_t>> values(chosen);
  std::vector<Dcf> assigned(chosen);
  std::vector<bool> seen(chosen, false);
  util::Status scan =
      ScanIndexed(objects, chunk, [&](const Dcf& object, size_t i) {
        const uint32_t c = result.assignments[i];
        ++result.cluster_sizes[c];
        for (const auto& e : object.cond.entries()) values[c].insert(e.id);
        if (!seen[c]) {
          assigned[c] = object;
          seen[c] = true;
        } else {
          assigned[c] = MergeDcf(assigned[c], object);
        }
      });
  if (!scan.ok()) return scan;
  ++result.timings.phase3_source_rescans;
  result.cluster_value_counts.resize(chosen);
  for (size_t c = 0; c < chosen; ++c) {
    result.cluster_value_counts[c] = values[c].size();
  }

  // Information retained by the final assignment: I(C;V) over the actual
  // Phase-3 clustering of the objects.
  WeightedRows final_rows;
  for (size_t c = 0; c < chosen; ++c) {
    if (assigned[c].p <= 0.0) continue;  // label with no members
    final_rows.weights.push_back(assigned[c].p);
    final_rows.rows.push_back(assigned[c].cond);
  }
  const double final_info = MutualInformation(final_rows);
  result.info_loss_fraction =
      result.mutual_information > 0.0
          ? (result.mutual_information - final_info) /
                result.mutual_information
          : 0.0;
  result.info_loss_vs_leaves =
      leaf_info > 0.0 ? (leaf_info - final_info) / leaf_info : 0.0;
  return result;
}

util::Result<HorizontalPartitionResult> HorizontallyPartition(
    const relation::Relation& rel,
    const HorizontalPartitionOptions& options) {
  if (rel.NumTuples() == 0) {
    return util::Status::InvalidArgument("relation is empty");
  }
  const std::vector<Dcf> objects = BuildTupleObjects(rel);
  VectorDcfStream stream(objects);
  return HorizontallyPartitionStream(stream, options);
}

}  // namespace limbo::core
