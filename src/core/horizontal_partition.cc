#include "core/horizontal_partition.h"

#include <algorithm>
#include <unordered_set>

#include "core/info.h"
#include "core/tuple_clustering.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace limbo::core {

util::Result<HorizontalPartitionResult> HorizontallyPartition(
    const relation::Relation& rel,
    const HorizontalPartitionOptions& options) {
  const size_t n = rel.NumTuples();
  if (n == 0) return util::Status::InvalidArgument("relation is empty");
  if (options.min_k < 1 || options.min_k > options.max_k) {
    return util::Status::InvalidArgument("need 1 <= min_k <= max_k");
  }

  LIMBO_OBS_SPAN(partition_span, "horizontal_partition");
  const std::vector<Dcf> objects = BuildTupleObjects(rel);

  LimboOptions limbo_options;
  limbo_options.phi = options.phi;
  limbo_options.branching = options.branching;
  limbo_options.leaf_capacity = options.leaf_capacity;
  limbo_options.k = 0;  // full dendrogram; we pick k ourselves
  limbo_options.threads = options.threads;
  LIMBO_ASSIGN_OR_RETURN(LimboResult limbo, RunLimbo(objects, limbo_options));

  HorizontalPartitionResult result;
  result.mutual_information = limbo.mutual_information;
  result.num_leaves = limbo.leaves.size();
  result.timings = limbo.timings;

  // I(C_leaves; V): information still present after Phase 1.
  WeightedRows leaf_rows;
  for (const Dcf& leaf : limbo.leaves) {
    leaf_rows.weights.push_back(leaf.p);
    leaf_rows.rows.push_back(leaf.cond);
  }
  const double leaf_info = MutualInformation(leaf_rows);

  // Per-k statistics from the merge sequence (k descending).
  const auto& merges = limbo.aib.merges();
  const std::vector<double> cluster_entropy =
      limbo.aib.ClusterEntropyPerStep(limbo.leaves);
  const size_t q = limbo.leaves.size();
  const size_t k_hi = std::min(options.max_k, q);
  for (size_t k = k_hi; k >= 1; --k) {
    ClusteringStats s;
    s.k = k;
    // Merge that goes k -> k-1 is merge index (q - k); cumulative loss at
    // k clusters is merges[q - k - 1].cumulative_loss.
    const size_t steps_done = q - k;
    const double cum =
        steps_done == 0 ? 0.0 : merges[steps_done - 1].cumulative_loss;
    s.delta_i = (steps_done < merges.size()) ? merges[steps_done].delta_i : 0.0;
    const double info_k = leaf_info - cum;
    s.info_retained =
        limbo.mutual_information > 0.0 ? info_k / limbo.mutual_information
                                       : 1.0;
    s.cluster_entropy = cluster_entropy[steps_done];
    s.conditional_entropy = s.cluster_entropy - info_k;
    if (s.conditional_entropy < 0.0) s.conditional_entropy = 0.0;
    result.stats.push_back(s);
    if (k == 1) break;
  }

  // Rank candidate ks by the relative δI jump — merging below a natural
  // k costs much more than the merge that reached k. The paper's
  // heuristic yields *candidate* good clusterings for inspection; we
  // surface the ranked list and pick the best when no explicit k given.
  {
    std::vector<std::pair<double, size_t>> scored;
    const size_t lo = std::max<size_t>(options.min_k, 2);
    for (const ClusteringStats& s : result.stats) {
      if (s.k < lo || s.k > k_hi) continue;
      const size_t steps_done = q - s.k;
      const double next_delta =
          steps_done > 0 ? merges[steps_done - 1].delta_i : 0.0;
      scored.push_back({s.delta_i / (next_delta + 1e-12), s.k});
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [score, k] : scored) result.candidate_ks.push_back(k);
  }
  size_t chosen = options.k;
  if (chosen == 0) {
    chosen = result.candidate_ks.empty() ? 1 : result.candidate_ks.front();
  }
  chosen = std::min(chosen, q);
  result.chosen_k = chosen;

  // Phase 2 representatives at the chosen k + Phase 3 assignment. RunLimbo
  // above ran with k = 0 (Phase 3 skipped), so the copied timings carried
  // phase3_ran = false with zeroed fields; time the manual Phase 3 here so
  // the reported record reflects what actually executed.
  {
    LIMBO_OBS_SPAN(phase3_span, "phase3");
    LIMBO_ASSIGN_OR_RETURN(std::vector<Dcf> reps,
                           ClusterDcfsAtK(limbo.leaves, limbo.aib, chosen));
    LIMBO_ASSIGN_OR_RETURN(
        result.assignments,
        LimboPhase3(objects, reps, nullptr, options.threads));
    result.timings.phase3_seconds = phase3_span.Stop();
    result.timings.phase3_distance_evals =
        static_cast<uint64_t>(objects.size()) * reps.size();
    result.timings.phase3_ran = true;
  }

  result.cluster_sizes.assign(chosen, 0);
  std::vector<std::unordered_set<relation::ValueId>> values(chosen);
  for (relation::TupleId t = 0; t < n; ++t) {
    const uint32_t c = result.assignments[t];
    ++result.cluster_sizes[c];
    for (relation::ValueId v : rel.Row(t)) values[c].insert(v);
  }
  result.cluster_value_counts.resize(chosen);
  for (size_t c = 0; c < chosen; ++c) {
    result.cluster_value_counts[c] = values[c].size();
  }

  // Information retained by the final assignment: I(C;V) over the actual
  // Phase-3 clustering of the objects.
  LIMBO_ASSIGN_OR_RETURN(std::vector<Dcf> assigned,
                         MergeDcfsByLabel(objects, result.assignments, chosen));
  WeightedRows final_rows;
  for (size_t c = 0; c < chosen; ++c) {
    if (assigned[c].p <= 0.0) continue;  // label with no members
    final_rows.weights.push_back(assigned[c].p);
    final_rows.rows.push_back(assigned[c].cond);
  }
  const double final_info = MutualInformation(final_rows);
  result.info_loss_fraction =
      result.mutual_information > 0.0
          ? (result.mutual_information - final_info) /
                result.mutual_information
          : 0.0;
  result.info_loss_vs_leaves =
      leaf_info > 0.0 ? (leaf_info - final_info) / leaf_info : 0.0;
  return result;
}

}  // namespace limbo::core
