#include "core/dcf_stream.h"

#include <algorithm>

#include "util/strings.h"

namespace limbo::core {

util::Result<std::span<const Dcf>> VectorDcfStream::NextChunk(
    size_t max_objects) {
  const size_t len = std::min(max_objects, objects_.size() - next_);
  std::span<const Dcf> chunk = objects_.subspan(next_, len);
  next_ += len;
  return chunk;
}

util::Result<std::span<const Dcf>> TupleObjectStream::NextChunk(
    size_t max_objects) {
  chunk_.clear();
  const size_t m = stats_->schema.NumAttributes();
  const double p = stats_->num_rows > 0
                       ? 1.0 / static_cast<double>(stats_->num_rows)
                       : 0.0;
  while (chunk_.size() < max_objects) {
    LIMBO_ASSIGN_OR_RETURN(const bool more, source_->Next(&fields_));
    if (!more) {
      if (yielded_ != stats_->num_rows) {
        return util::Status::InvalidArgument(util::StrFormat(
            "row source yielded %zu rows but stats expect %zu (stale stats "
            "file?)",
            yielded_, stats_->num_rows));
      }
      break;
    }
    if (yielded_ == stats_->num_rows) {
      return util::Status::InvalidArgument(util::StrFormat(
          "row source yielded more than the %zu rows the stats expect "
          "(stale stats file?)",
          stats_->num_rows));
    }
    ids_.clear();
    for (size_t a = 0; a < m; ++a) {
      util::Result<relation::ValueId> id =
          stats_->dictionary.Find(static_cast<relation::AttributeId>(a),
                                  fields_[a]);
      if (!id.ok()) {
        return util::Status::InvalidArgument(util::StrFormat(
            "row %zu, attribute %s: value not in the frozen dictionary "
            "(stale stats file?)",
            yielded_ + 1,
            stats_->schema.Name(static_cast<relation::AttributeId>(a))
                .c_str()));
      }
      ids_.push_back(*id);
    }
    Dcf object;
    object.p = p;
    object.cond = SparseDistribution::UniformOver(ids_);
    chunk_.push_back(std::move(object));
    ++yielded_;
  }
  return std::span<const Dcf>(chunk_);
}

util::Status TupleObjectStream::Reset() {
  util::Status s = source_->Reset();
  if (!s.ok()) return s;
  yielded_ = 0;
  return util::Status::Ok();
}

}  // namespace limbo::core
