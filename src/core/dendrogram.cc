#include "core/dendrogram.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/strings.h"

namespace limbo::core {

namespace {

struct Node {
  int32_t left = -1;   // cluster id or -1 for a leaf
  int32_t right = -1;
  double loss = 0.0;  // per-merge information loss (x position)
};

/// Leaf order by DFS so every merge spans a contiguous row range.
void CollectLeaves(const std::vector<Node>& nodes, uint32_t id,
                   std::vector<uint32_t>* out) {
  if (nodes[id].left < 0) {
    out->push_back(id);
    return;
  }
  CollectLeaves(nodes, static_cast<uint32_t>(nodes[id].left), out);
  CollectLeaves(nodes, static_cast<uint32_t>(nodes[id].right), out);
}

}  // namespace

std::string RenderDendrogram(const AibResult& result,
                             const std::vector<std::string>& labels,
                             size_t width) {
  const size_t q = result.num_objects();
  LIMBO_CHECK(labels.size() == q);
  if (q == 0) return "";
  if (q == 1) return labels[0] + "\n";

  std::vector<Node> nodes(q + result.merges().size());
  double max_loss = 0.0;
  for (const Merge& m : result.merges()) {
    nodes[m.merged].left = static_cast<int32_t>(m.left);
    nodes[m.merged].right = static_cast<int32_t>(m.right);
    nodes[m.merged].loss = m.delta_i;
    max_loss = std::max(max_loss, m.delta_i);
  }
  if (max_loss <= 0.0) max_loss = 1.0;

  // Roots: clusters that are never merged further.
  std::vector<bool> has_parent(nodes.size(), false);
  for (const Merge& m : result.merges()) {
    has_parent[m.left] = true;
    has_parent[m.right] = true;
  }
  std::vector<uint32_t> order;
  for (uint32_t id = 0; id < nodes.size(); ++id) {
    if (!has_parent[id]) CollectLeaves(nodes, id, &order);
  }
  LIMBO_CHECK(order.size() == q);

  size_t label_width = 0;
  for (const std::string& label : labels) {
    label_width = std::max(label_width, label.size());
  }
  const size_t x0 = label_width + 2;
  const size_t total_width = x0 + width + 2;
  const size_t rows = q;
  std::vector<std::string> grid(rows + 2,
                                std::string(total_width, ' '));

  // Row of each cluster (leaves at their order position; merges at the
  // midpoint) and x column (leaves at x0; merges scaled by loss).
  std::vector<double> row(nodes.size(), 0.0);
  std::vector<size_t> col(nodes.size(), x0);
  std::vector<uint32_t> leaf_row(q, 0);
  for (size_t r = 0; r < order.size(); ++r) {
    row[order[r]] = static_cast<double>(r);
    leaf_row[order[r]] = static_cast<uint32_t>(r);
  }
  for (const Merge& m : result.merges()) {
    row[m.merged] = (row[m.left] + row[m.right]) / 2.0;
    size_t x = x0 + static_cast<size_t>(
                        std::lround(m.delta_i / max_loss * width));
    // Keep parents to the right of their children even if δI dips.
    x = std::max({x, col[m.left] + 1, col[m.right] + 1});
    x = std::min(x, total_width - 1);
    col[m.merged] = x;
  }

  // Leaf labels.
  for (size_t r = 0; r < q; ++r) {
    const std::string& label = labels[order[r]];
    grid[r].replace(0, label.size(), label);
  }
  // Draw merges: horizontal runs from each child to the merge column on
  // the child's *representative* row, and a vertical connector.
  for (const Merge& m : result.merges()) {
    const size_t x = col[m.merged];
    for (uint32_t child : {m.left, m.right}) {
      const auto child_row =
          static_cast<size_t>(std::lround(row[child]));
      for (size_t c = col[child]; c < x; ++c) {
        if (grid[child_row][c] == ' ') grid[child_row][c] = '-';
      }
    }
    const auto top = static_cast<size_t>(
        std::lround(std::min(row[m.left], row[m.right])));
    const auto bottom = static_cast<size_t>(
        std::lround(std::max(row[m.left], row[m.right])));
    for (size_t r = top; r <= bottom; ++r) {
      grid[r][x] = (r == top || r == bottom) ? '+' : '|';
    }
    // Continuation stub on the merged cluster's row.
    const auto mid = static_cast<size_t>(std::lround(row[m.merged]));
    if (grid[mid][x] == ' ') grid[mid][x] = '|';
  }

  std::string out;
  for (size_t r = 0; r < rows; ++r) {
    // Trim trailing spaces.
    std::string line = grid[r];
    while (!line.empty() && line.back() == ' ') line.pop_back();
    out += line;
    out += '\n';
  }
  // Loss axis.
  out += std::string(x0, ' ') + std::string(width, '~') + '\n';
  out += std::string(x0, ' ') +
         util::StrFormat("0%*s", static_cast<int>(width - 1),
                         util::StrFormat("max loss = %.4f", max_loss).c_str()) +
         '\n';
  return out;
}

}  // namespace limbo::core
