#ifndef LIMBO_CORE_DCF_TREE_H_
#define LIMBO_CORE_DCF_TREE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dcf.h"

namespace limbo::core {

struct FrozenDcfTree;

/// The BIRCH-like summary tree of LIMBO Phase 1 (Section 5.2).
///
/// Objects (singleton DCFs) are inserted one at a time. Each insertion
/// descends to the leaf whose guiding summary is closest in information
/// loss; at the leaf, the object is merged into the closest DCF entry if
/// the loss does not exceed `threshold` (the paper's φ·I(V;T)/|V|),
/// otherwise it starts a new entry. Overfull nodes split BIRCH-style
/// (farthest pair seeds, nearest-seed redistribution).
///
/// Internal-node summaries are kept as unnormalized hash-map accumulators
/// so that routing an object costs O(nnz(object)) per level instead of
/// O(support(summary)); leaf entries are exact DCFs since they become the
/// Phase-2 input.
class DcfTree {
 public:
  struct Options {
    /// Max entries per node (the paper's branching factor B; default 4).
    int branching = 4;
    /// Max DCF entries per leaf; 0 means "same as branching".
    int leaf_capacity = 0;
    /// Merge threshold on δI. 0.0 merges only (numerically) identical
    /// objects, making Phase 1 + Phase 2 equivalent to plain AIB.
    double threshold = 0.0;
  };

  struct Stats {
    size_t height = 1;
    size_t num_nodes = 1;
    size_t num_leaf_entries = 0;
    size_t num_inserts = 0;
    size_t num_merges = 0;  // inserts absorbed into an existing entry
  };

  explicit DcfTree(const Options& options);
  ~DcfTree();

  DcfTree(const DcfTree&) = delete;
  DcfTree& operator=(const DcfTree&) = delete;

  /// Inserts one object. `object.p` is its prior mass (1/n for tuples,
  /// 1/d for values); `object.cond` its conditional distribution. Returns
  /// the id of the leaf entry the object landed in — ids are assigned in
  /// entry-creation order, stay dense in [0, num_leaf_entries), and never
  /// change once assigned (merges absorb into the target entry, splits
  /// move entries between nodes without renumbering).
  uint32_t Insert(const Dcf& object);

  /// All leaf DCF entries, left to right. These are the Phase-2 inputs.
  std::vector<Dcf> LeafDcfs() const;

  /// The stable creation-order id of each leaf entry, in the same
  /// left-to-right order as LeafDcfs().
  std::vector<uint32_t> LeafEntryIds() const;

  /// Deep-copies the tree's exact state — node structure, leaf entries
  /// with their stable ids, unnormalized internal accumulators (sorted by
  /// id so the snapshot is byte-deterministic), options and counters —
  /// into a serializable value. Restore() rebuilds a tree that continues
  /// inserting exactly as this one would.
  FrozenDcfTree Freeze() const;

  /// Rebuilds a live tree from a frozen snapshot. The result accepts
  /// further Insert() calls and Freeze()s back to an identical snapshot.
  static std::unique_ptr<DcfTree> Restore(const FrozenDcfTree& frozen);

  /// Walks the whole tree checking structural invariants: node fan-outs
  /// within bounds, every internal accumulator equal to the sum of its
  /// subtree's leaf statistics (within tolerance), total mass equal
  /// to the inserted mass, and leaf-entry ids forming a permutation of
  /// [0, num_leaf_entries). Returns a description of the first violation,
  /// or an empty string. Test/debug aid — O(total support).
  std::string ValidateInvariants() const;

  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }

 private:
  struct Node;
  struct ChildRef;

  /// Result of inserting into a subtree: if the node split, the two
  /// replacement children (each with a fresh accumulator summary).
  struct SplitResult {
    std::unique_ptr<ChildRef> halves[2];
    bool DidSplit() const { return halves[0] != nullptr; }
  };

  SplitResult InsertInto(Node* node, const Dcf& object);
  std::unique_ptr<ChildRef> MakeChildRef(std::unique_ptr<Node> node) const;
  static void AccumulateSubtree(const Node* node, double* p,
                                std::unordered_map<uint32_t, double>* acc);
  void SplitLeaf(Node* leaf, std::unique_ptr<Node>* out_a,
                 std::unique_ptr<Node>* out_b) const;
  void SplitInternal(Node* node, std::unique_ptr<Node>* out_a,
                     std::unique_ptr<Node>* out_b) const;
  void CollectLeaves(const Node* node, std::vector<Dcf>* out,
                     std::vector<uint32_t>* ids) const;
  size_t CountNodes(const Node* node) const;

  Options options_;
  Stats stats_;
  std::unique_ptr<Node> root_;
  /// Leaf-entry id of the most recent Insert, set at the leaf level and
  /// carried out of the recursion.
  uint32_t last_insert_id_ = 0;
  /// δI kernel for the descent's leaf-entry search: Insert scatters the
  /// incoming object once, then every candidate leaf entry streams
  /// against it — identical bits to per-pair InformationLoss.
  LossKernel insert_kernel_;
};

struct FrozenDcfChild;

/// One node of a frozen Phase-1 tree. Exactly one of the two payloads is
/// populated: leaves carry exact DCF entries plus their stable ids,
/// internal nodes carry children with their accumulator summaries.
struct FrozenDcfNode {
  bool is_leaf = true;
  std::vector<Dcf> entries;
  std::vector<uint32_t> entry_ids;
  std::vector<FrozenDcfChild> children;
};

/// A frozen internal-node child: the subtree plus its unnormalized
/// accumulator summary with entries sorted ascending by id (the live
/// tree keeps them in a hash map; sorting at freeze time makes the
/// snapshot — and hence its serialization — deterministic).
struct FrozenDcfChild {
  double p = 0.0;
  std::vector<uint32_t> acc_ids;
  std::vector<double> acc_masses;
  FrozenDcfNode node;
};

/// A complete serializable snapshot of a DcfTree: enough state to resume
/// incremental insertion bit-for-bit where the original left off.
struct FrozenDcfTree {
  int branching = 4;
  int leaf_capacity = 4;
  double threshold = 0.0;
  DcfTree::Stats stats;
  FrozenDcfNode root;
};

}  // namespace limbo::core

#endif  // LIMBO_CORE_DCF_TREE_H_
