#ifndef LIMBO_CORE_AIB_H_
#define LIMBO_CORE_AIB_H_

#include <cstdint>
#include <vector>

#include "core/dcf.h"
#include "util/result.h"

namespace limbo::core {

/// One merge step of an agglomerative clustering. Cluster ids follow the
/// scipy-linkage convention: inputs are clusters 0..q-1; the i-th merge
/// creates cluster q+i.
struct Merge {
  uint32_t left;
  uint32_t right;
  uint32_t merged;
  /// Information loss δI(left, right) of this merge (Eq. 3), base-2 bits.
  double delta_i;
  /// Cumulative loss I(V;T) - I(C;T) after this merge.
  double cumulative_loss;
  /// Prior mass p of the merged cluster.
  double p_merged;
};

/// Execution counters of an AgglomerativeIb run, for observability. The
/// eval counter is computed from the dispatch structure (not per-call
/// atomics), so it is exact and identical across thread counts.
struct AibStats {
  /// Number of InformationLoss evaluations (initial matrix + refreshes).
  uint64_t distance_evals = 0;
  /// Wall-clock seconds of the whole run.
  double seconds = 0.0;
  /// Resolved lane count the run executed with.
  size_t threads = 1;
};

/// Result of a (full or partial) agglomerative IB run.
class AibResult {
 public:
  AibResult(size_t num_objects, std::vector<Merge> merges)
      : num_objects_(num_objects), merges_(std::move(merges)) {}

  size_t num_objects() const { return num_objects_; }
  const std::vector<Merge>& merges() const { return merges_; }

  /// Number of clusters after all recorded merges.
  size_t FinalK() const { return num_objects_ - merges_.size(); }

  /// Labels (0..k-1, ordered by first member) of the original objects in
  /// the k-clustering. k must satisfy FinalK() <= k <= num_objects().
  util::Result<std::vector<uint32_t>> AssignmentsAtK(size_t k) const;

  /// Cumulative information loss at the k-clustering (0 for k = q).
  util::Result<double> LossAtK(size_t k) const;

  /// Entropy H(C_k) of the clustering prior at each k, computed from the
  /// merge masses. Element [0] corresponds to k = q (no merges), element
  /// [i] to k = q - i. Needs the input DCFs to recover leaf masses.
  std::vector<double> ClusterEntropyPerStep(const std::vector<Dcf>& inputs) const;

  const AibStats& stats() const { return stats_; }
  void set_stats(const AibStats& stats) { stats_ = stats; }

 private:
  size_t num_objects_;
  std::vector<Merge> merges_;
  AibStats stats_;
};

/// Options for AgglomerativeIb.
struct AibOptions {
  /// How δI evaluations are dispatched. Both produce bit-identical
  /// results (the batch kernel *is* the per-pair kernel, scattered once
  /// per row instead of once per pair); kPerPair survives as the
  /// reference arm for the equivalence tests and the kernel benchmark.
  enum class DistanceKernel { kBatch, kPerPair };

  /// Stop when this many clusters remain (1 = full dendrogram).
  size_t min_k = 1;
  /// Worker lanes for the distance-matrix build and per-merge row
  /// refresh. 0 = LIMBO_THREADS env var / hardware concurrency
  /// (util::DefaultThreadCount), 1 = serial. Results are bit-identical
  /// for every value.
  size_t threads = 0;
  /// Distance dispatch. kBatch keeps slot conditionals in a
  /// DistributionArena and streams each matrix row / refresh through a
  /// per-lane LossKernel.
  DistanceKernel kernel = DistanceKernel::kBatch;
};

/// Agglomerative Information Bottleneck (Slonim & Tishby): greedily merges
/// the cluster pair with minimum information loss δI until `min_k` clusters
/// remain. Exact greedy; O(q^2) memory for the distance matrix, so intended
/// for q up to a few thousand — use Limbo (limbo.h) above that, exactly as
/// the paper prescribes.
///
/// Ties in δI are broken deterministically on *cluster ids*: the pair
/// with the lexicographically smallest (min id, max id) merges first,
/// independent of slot-recycling history and thread count.
util::Result<AibResult> AgglomerativeIb(const std::vector<Dcf>& inputs,
                                        const AibOptions& options = {});

/// Convenience: merged DCFs of the clusters in the k-clustering, in label
/// order produced by AssignmentsAtK.
util::Result<std::vector<Dcf>> ClusterDcfsAtK(const std::vector<Dcf>& inputs,
                                              const AibResult& result,
                                              size_t k);

/// Merges `objects` into k cluster DCFs by label (Eq. 1/2 per member, in
/// object order). Labels must lie in [0, k); a label with no members
/// yields a default (zero-mass, empty) Dcf. Shared by ClusterDcfsAtK and
/// the horizontal-partitioning refinement loop.
util::Result<std::vector<Dcf>> MergeDcfsByLabel(
    const std::vector<Dcf>& objects, const std::vector<uint32_t>& labels,
    size_t k);

}  // namespace limbo::core

#endif  // LIMBO_CORE_AIB_H_
