#ifndef LIMBO_CORE_DENDROGRAM_H_
#define LIMBO_CORE_DENDROGRAM_H_

#include <string>
#include <vector>

#include "core/aib.h"

namespace limbo::core {

/// Renders an agglomerative merge sequence as an ASCII dendrogram in the
/// style of the paper's Figures 10 and 14-18: one row per leaf, merge
/// brackets placed at a column proportional to the merge's information
/// loss, plus a loss axis.
///
///   DeptNo    ─┐
///   DeptName  ─┤________
///   MgrNo     ─┘        |
///   ...
///
/// `labels[i]` names leaf i (i.e. input object i of the AIB run).
std::string RenderDendrogram(const AibResult& result,
                             const std::vector<std::string>& labels,
                             size_t width = 56);

}  // namespace limbo::core

#endif  // LIMBO_CORE_DENDROGRAM_H_
