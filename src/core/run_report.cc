#include "core/run_report.h"

#include <utility>

namespace limbo::core {

obs::ReportSection TrajectorySection(const std::vector<Merge>& merges,
                                     std::string title) {
  obs::ReportSection section(std::move(title));
  section.AddField("merges", static_cast<uint64_t>(merges.size()));
  section.table.columns = {"step", "delta_i", "cumulative_loss", "p_merged"};
  for (size_t step = 0; step < merges.size(); ++step) {
    const Merge& m = merges[step];
    section.table.rows.push_back({obs::ReportValue::Integer(step),
                                  obs::ReportValue::Number(m.delta_i),
                                  obs::ReportValue::Number(m.cumulative_loss),
                                  obs::ReportValue::Number(m.p_merged)});
  }
  return section;
}

obs::ReportSection TimingsSection(const PhaseTimings& timings) {
  obs::ReportSection section("phases");
  section.AddField("threads", static_cast<uint64_t>(timings.threads));
  section.AddField("phase1_seconds", timings.phase1_seconds);
  section.AddField("phase2_seconds", timings.phase2_seconds);
  section.AddField("phase2_distance_evals", timings.phase2_distance_evals);
  if (timings.phase3_ran) {
    section.AddField("phase3_seconds", timings.phase3_seconds);
    section.AddField("phase3_distance_evals", timings.phase3_distance_evals);
  }
  // Streamed-run scan accounting. phase3_source_rescans is gated on
  // phase3_ran exactly like the phase3_* fields above: a k = 0 run never
  // re-scans the source, so emitting the zero-initialized member would be
  // the same stale-field bug the phase3_ran flag exists to prevent.
  if (timings.streamed) {
    section.AddField("streamed", true);
    section.AddField("source_scans", timings.source_scans);
    if (timings.phase3_ran) {
      section.AddField("phase3_source_rescans", timings.phase3_source_rescans);
    }
  }
  return section;
}

obs::RunReport AssembleRunReport(std::string title,
                                 std::vector<obs::ReportSection> sections) {
  obs::RunReport report;
  report.title = std::move(title);
  report.sections = std::move(sections);
  report.sections.push_back(obs::TraceSection(obs::SnapshotTrace()));
  report.sections.push_back(obs::CountersSection(obs::SnapshotCounters()));
  return report;
}

}  // namespace limbo::core
