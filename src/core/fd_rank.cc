#include "core/fd_rank.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "obs/counters.h"
#include "obs/trace.h"

namespace limbo::core {

util::Result<std::vector<RankedFd>> RankFds(
    const std::vector<fd::FunctionalDependency>& fds,
    const AttributeGroupingResult& grouping, const FdRankOptions& options) {
  if (options.psi < 0.0 || options.psi > 1.0) {
    return util::Status::InvalidArgument("psi must be in [0, 1]");
  }
  LIMBO_OBS_SPAN(rank_span, "fd_rank");
  const double max_q = grouping.max_merge_loss;
  const double cutoff = options.psi * max_q;

  // Step 1: initial rank max(Q); drop to IL(G) at the first merge where
  // all of S = X ∪ A co-reside, if IL(G) clears the ψ cutoff.
  std::vector<RankedFd> ranked;
  ranked.reserve(fds.size());
  for (const fd::FunctionalDependency& f : fds) {
    RankedFd r;
    r.fd = f;
    r.rank = max_q;
    const fd::AttributeSet s = f.lhs.Union(f.rhs);
    for (const Merge& merge : grouping.aib.merges()) {
      if (s.IsSubsetOf(grouping.cluster_members[merge.merged])) {
        if (merge.delta_i <= cutoff + 1e-12) {
          r.rank = merge.delta_i;
          r.anchored = true;
        }
        break;  // first co-residence decides
      }
    }
    ranked.push_back(r);
    if (r.anchored) LIMBO_OBS_COUNT("fd_rank.anchored", 1);
  }
  LIMBO_OBS_COUNT("fd_rank.fds_ranked", ranked.size());

  // Step 2: collapse same-antecedent FDs with equal rank. Ranks are
  // quantized so that two merges whose losses differ only by floating-
  // point noise (e.g. two exactly-duplicated value groups) compare equal.
  auto quantize = [](double rank) {
    return static_cast<int64_t>(std::llround(rank * 1e9));
  };
  struct Key {
    uint64_t lhs;
    int64_t rank;
    bool operator<(const Key& o) const {
      if (lhs != o.lhs) return lhs < o.lhs;
      return rank < o.rank;
    }
  };
  std::map<Key, RankedFd> collapsed;
  for (const RankedFd& r : ranked) {
    const Key key{r.fd.lhs.bits(), quantize(r.rank)};
    auto it = collapsed.find(key);
    if (it == collapsed.end()) {
      collapsed.emplace(key, r);
    } else {
      it->second.fd.rhs = it->second.fd.rhs.Union(r.fd.rhs);
      it->second.anchored = it->second.anchored || r.anchored;
    }
  }

  // Step 3: ascending rank; ties prefer wider FDs, then canonical order.
  std::vector<RankedFd> out;
  out.reserve(collapsed.size());
  for (const auto& [key, r] : collapsed) out.push_back(r);
  std::sort(out.begin(), out.end(), [&](const RankedFd& a, const RankedFd& b) {
    if (quantize(a.rank) != quantize(b.rank)) return a.rank < b.rank;
    const size_t wa = a.fd.lhs.Count() + a.fd.rhs.Count();
    const size_t wb = b.fd.lhs.Count() + b.fd.rhs.Count();
    if (wa != wb) return wa > wb;
    if (a.fd.lhs.bits() != b.fd.lhs.bits()) {
      return a.fd.lhs.bits() < b.fd.lhs.bits();
    }
    return a.fd.rhs.bits() < b.fd.rhs.bits();
  });
  return out;
}

}  // namespace limbo::core
