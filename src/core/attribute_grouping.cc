#include "core/attribute_grouping.h"

#include <algorithm>

#include "core/info.h"
#include "core/limbo.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace limbo::core {

std::string AttributeGroupingResult::DendrogramText(
    const relation::Schema& schema) const {
  std::string out;
  for (const Merge& m : aib.merges()) {
    out += util::StrFormat(
        "  loss=%.6f  %s + %s -> %s\n", m.delta_i,
        cluster_members[m.left].ToString(schema).c_str(),
        cluster_members[m.right].ToString(schema).c_str(),
        cluster_members[m.merged].ToString(schema).c_str());
  }
  return out;
}

util::Result<AttributeGroupingResult> GroupAttributes(
    const relation::Relation& rel, const ValueClusteringResult& values,
    const AttributeGroupingOptions& options) {
  const size_t m = rel.NumAttributes();
  if (values.duplicate_groups.empty()) {
    return util::Status::FailedPrecondition(
        "CV_D is empty: no duplicate value groups to express attributes "
        "over");
  }

  // Matrix F: row per attribute of A_D, one column per CV_D group, entry
  // F[a][j] = O[c_j, a], rows normalized.
  LIMBO_OBS_SPAN(grouping_span, "attribute_grouping");
  AttributeGroupingResult result;
  std::vector<std::vector<SparseDistribution::Entry>> rows(m);
  for (size_t j = 0; j < values.duplicate_groups.size(); ++j) {
    const ValueGroup& group = values.groups[values.duplicate_groups[j]];
    for (size_t a = 0; a < m; ++a) {
      if (group.dcf.attr_counts[a] > 0) {
        rows[a].push_back({static_cast<uint32_t>(j),
                           static_cast<double>(group.dcf.attr_counts[a])});
      }
    }
  }
  for (size_t a = 0; a < m; ++a) {
    if (!rows[a].empty()) {
      result.attributes.push_back(static_cast<relation::AttributeId>(a));
    }
  }
  const size_t q = result.attributes.size();
  if (q < 2) {
    return util::Status::FailedPrecondition(
        "fewer than two attributes carry duplicate value groups");
  }

  std::vector<Dcf> objects;
  objects.reserve(q);
  for (relation::AttributeId a : result.attributes) {
    Dcf obj;
    obj.p = 1.0 / static_cast<double>(q);
    obj.cond = SparseDistribution::FromPairs(std::move(rows[a]));
    objects.push_back(std::move(obj));
  }

  // Membership tracking per dendrogram leaf.
  std::vector<fd::AttributeSet> leaf_members;
  std::vector<Dcf> aib_inputs;
  if (options.phi_a > 0.0) {
    // Pre-summarize with Phase 1 and recover leaf membership via Phase 3.
    WeightedRows wr;
    for (const Dcf& o : objects) {
      wr.weights.push_back(o.p);
      wr.rows.push_back(o.cond);
    }
    const double info = MutualInformation(wr);
    LimboOptions lo;
    lo.phi = options.phi_a;
    aib_inputs = LimboPhase1(objects, lo,
                             options.phi_a * info / static_cast<double>(q));
    LIMBO_ASSIGN_OR_RETURN(
        std::vector<uint32_t> labels,
        LimboPhase3(objects, aib_inputs, nullptr, options.threads));
    leaf_members.assign(aib_inputs.size(), fd::AttributeSet());
    for (size_t i = 0; i < q; ++i) {
      leaf_members[labels[i]] =
          leaf_members[labels[i]].With(result.attributes[i]);
    }
  } else {
    aib_inputs = objects;
    leaf_members.reserve(q);
    for (relation::AttributeId a : result.attributes) {
      leaf_members.push_back(fd::AttributeSet::Single(a));
    }
  }

  AibOptions aib_options;
  aib_options.threads = options.threads;
  LIMBO_ASSIGN_OR_RETURN(result.aib, AgglomerativeIb(aib_inputs, aib_options));

  result.cluster_members = std::move(leaf_members);
  result.cluster_members.resize(aib_inputs.size() +
                                result.aib.merges().size());
  for (const Merge& merge : result.aib.merges()) {
    result.cluster_members[merge.merged] =
        result.cluster_members[merge.left].Union(
            result.cluster_members[merge.right]);
    result.max_merge_loss = std::max(result.max_merge_loss, merge.delta_i);
  }
  // The merge sequence Q (with per-merge δI) is the information-plane
  // trajectory the run report surfaces; here just the volume.
  LIMBO_OBS_COUNT("attribute_grouping.attributes", q);
  LIMBO_OBS_COUNT("attribute_grouping.merges", result.aib.merges().size());
  return result;
}

}  // namespace limbo::core
