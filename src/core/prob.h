#ifndef LIMBO_CORE_PROB_H_
#define LIMBO_CORE_PROB_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace limbo::core {

/// A sparse probability distribution over a discrete domain indexed by
/// uint32 ids. Entries are sorted by id and strictly positive; absent ids
/// have mass zero. This is the representation of every p(T|c) / p(V|t)
/// vector in the paper — clusters over large domains stay cheap as long as
/// their supports are small, and merges are linear in the union support.
class SparseDistribution {
 public:
  struct Entry {
    uint32_t id;
    double mass;
  };

  SparseDistribution() = default;

  /// Uniform distribution over `ids` (need not be sorted; must be unique).
  static SparseDistribution UniformOver(std::span<const uint32_t> ids);

  /// From explicit (id, mass) pairs; normalizes so masses sum to 1.
  /// Pairs need not be sorted; ids must be unique; masses must be >= 0 and
  /// not all zero.
  static SparseDistribution FromPairs(std::vector<Entry> entries);

  /// From (id, mass) pairs that already form a distribution (e.g. parsed
  /// back from a serialized one): masses are kept bit-for-bit, never
  /// renormalized. Pairs need not be sorted; ids must be unique; masses
  /// must be > 0.
  static SparseDistribution FromNormalizedPairs(std::vector<Entry> entries);

  /// Convex combination w1*a + w2*b (w1 + w2 should be 1 for a valid
  /// distribution; the function does not renormalize). This is Eq. (2) of
  /// the paper with w1 = p(c1)/p(c*), w2 = p(c2)/p(c*).
  static SparseDistribution WeightedMerge(double w1,
                                          const SparseDistribution& a,
                                          double w2,
                                          const SparseDistribution& b);

  size_t SupportSize() const { return entries_.size(); }
  bool Empty() const { return entries_.empty(); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Mass at `id` (0 if absent). O(log support).
  double MassAt(uint32_t id) const;

  /// Sum of masses (1.0 up to rounding for a proper distribution).
  double TotalMass() const;

  /// Shannon entropy, base 2.
  double Entropy() const;

  bool operator==(const SparseDistribution& other) const {
    return entries_ == other.entries_;
  }

 private:
  std::vector<Entry> entries_;

  friend bool operator==(const Entry& a, const Entry& b);
};

inline bool operator==(const SparseDistribution::Entry& a,
                       const SparseDistribution::Entry& b) {
  return a.id == b.id && a.mass == b.mass;
}

/// Kullback–Leibler divergence D_KL[p || q], base 2. Requires the support
/// of p to be contained in the support of q; returns +inf otherwise.
double KlDivergence(const SparseDistribution& p, const SparseDistribution& q);

/// Weighted Jensen–Shannon divergence
///   JS_{w1,w2}[p, q] = w1 D_KL[p || m] + w2 D_KL[q || m],  m = w1 p + w2 q.
/// Computed in one merge pass without materializing m. Base 2; bounded by 1.
double JsDivergence(double w1, const SparseDistribution& p, double w2,
                    const SparseDistribution& q);

/// Support-size ratio at which JsDivergence (and LossKernel) switch from
/// the merge-join evaluation to the asymmetric small-side iteration.
/// Measured in `micro_limbo --kernel`: at equal supports the merge-join
/// path wins (one streaming pass, no per-entry searches); once one side
/// is ~an order of magnitude smaller, walking the small side with
/// galloping lookups into the large side is faster because it skips the
/// large side's private entries entirely (their mass is folded in as
/// 1 − shared). 16 sits comfortably past the crossover for every support
/// shape in BENCH_kernel.json, and the two paths agree to < 1e-12, so
/// the exact value only affects speed, never results (property-tested at
/// the boundary in kernel_test.cc).
inline constexpr size_t kAsymmetricCutoffRatio = 16;

/// Non-owning view of a sorted sparse row: a span of entries plus an
/// optional parallel array of cached log2(mass) values (arena rows carry
/// one; plain SparseDistributions do not). Cached or not, the kernel
/// produces identical bits — the cache holds exactly what Log2(mass)
/// would return — caching just skips the call.
struct DistributionView {
  using Entry = SparseDistribution::Entry;

  std::span<const Entry> entries;
  const double* log2s = nullptr;

  DistributionView() = default;
  // Implicit: every SparseDistribution is viewable.
  DistributionView(const SparseDistribution& d)  // NOLINT
      : entries(d.entries()) {}
  DistributionView(std::span<const Entry> e, const double* logs)
      : entries(e), log2s(logs) {}

  size_t SupportSize() const { return entries.size(); }
  bool Empty() const { return entries.empty(); }
};

/// Slab (CSR) storage for the distribution working set of a clustering
/// run: every row lives in one contiguous {id, mass} array with a
/// parallel cached-log2(mass) array and an offsets table. AIB keeps its
/// slot conditionals here and Phase 3 its representatives, so the
/// quadratic distance scans stream one allocation instead of hopping
/// between per-cluster heap vectors, and the per-entry logs are computed
/// once per row instead of once per evaluation.
///
/// Rows are immutable once appended; merging clusters appends the merged
/// row (AppendMerge) and the caller retires the old index. Appending may
/// reallocate the slab, so hold row *indices* across Append calls and
/// re-take views afterwards.
class DistributionArena {
 public:
  using Entry = SparseDistribution::Entry;

  size_t NumRows() const { return offsets_.size() - 1; }
  size_t NumEntries() const { return entries_.size(); }

  void Clear();
  void ReserveEntries(size_t n);

  /// Copies `row` into the slab, dropping zero-mass entries and caching
  /// log2 of every mass. Returns the new row index.
  size_t Append(DistributionView row);

  /// Writes the weighted merge w1·rows[a] + w2·rows[b] (Eq. 2) directly
  /// into slab scratch — the same per-entry expressions as
  /// SparseDistribution::WeightedMerge, so the masses are bit-identical
  /// to a MergeDcf of the same rows — and returns the new row index.
  /// Zero-mass results (possible only when a weight is 0) are dropped.
  size_t AppendMerge(double w1, size_t a, double w2, size_t b);

  DistributionView Row(size_t i) const {
    const size_t begin = offsets_[i];
    return DistributionView(
        std::span<const Entry>(entries_.data() + begin,
                               offsets_[i + 1] - begin),
        log2s_.data() + begin);
  }

 private:
  std::vector<Entry> entries_;
  std::vector<double> log2s_;  // log2(entries_[k].mass), parallel
  std::vector<size_t> offsets_ = {0};
};

/// Fused δI evaluator (Eq. 3) for one object against many candidates.
///
/// SetObject scatters the object's entries (mass and log2 mass) into a
/// reusable dense scratch once; each Loss() then streams one candidate
/// row in a single pass. Per shared entry the JS integrand is evaluated
/// in the rearranged form
///     w1·p·log2(p) + w2·q·log2(q) − m·log2(m),   m = w1·p + w2·q,
/// which costs one fresh log2 (for m) when both sides carry cached logs,
/// instead of the two of the textbook log2(p/m) + log2(q/m) form.
/// Entries private to the candidate contribute w2·q·log2(1/w2) as they
/// stream; entries private to the object are folded in at the end as
/// w1·(object mass − shared mass)·log2(1/w1). When the object support is
/// kAsymmetricCutoffRatio× smaller than the candidate's, the roles flip:
/// the object side is walked with galloping lookups into the candidate
/// row and the candidate-private mass becomes the residual.
///
/// InformationLoss(a, b) IS SetObject(a) + Loss(b), so the batch path is
/// bit-identical to the per-pair path by construction, and determinism
/// across thread counts follows because each evaluation is a pure
/// function of the pair.
class LossKernel {
 public:
  /// Plain per-kernel work tallies — no atomics, because each kernel is
  /// owned by one lane. Call sites flush them into the obs counter
  /// registry after their parallel regions join (FlushKernelStats).
  struct Stats {
    /// Loss() invocations. Thread-invariant: dispatch is structural.
    uint64_t loss_calls = 0;
    /// SetObject() calls that actually scattered the object.
    uint64_t scatters = 0;
    /// SetObject() calls skipped by the same-tag dedup. scatters and
    /// dedup_hits are scheduling tallies: call sites that SetObject once
    /// per work item (Phase 3) produce thread-invariant sums, but sites
    /// that re-set per chunk of a parallel scan (the AIB refresh) make
    /// even the sum depend on how the range was chunked.
    uint64_t dedup_hits = 0;
  };

  /// Fixes the object side. The view's backing storage must outlive
  /// subsequent Loss calls. A nonzero `tag` makes repeated calls with
  /// the same tag no-ops, for call sites that re-set the same object
  /// once per chunk of a parallel scan.
  void SetObject(double p, DistributionView cond, uint64_t tag = 0);

  /// δI(object, candidate) — Eq. 3, bits.
  double Loss(double p, DistributionView cand) const;

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  double JsSmallObject(double w1, double w2, DistributionView cand) const;
  double JsStreamCandidate(double w1, double w2, DistributionView cand) const;

  double object_p_ = 0.0;
  double object_mass_ = 0.0;  // exact Σ mass, in entry order
  DistributionView object_;
  const double* object_log2s_ = nullptr;
  std::vector<double> owned_log2s_;  // object logs when the view has none
  // Dense scratch indexed by id, cleared via the touched list. Disabled
  // (two-pointer fallback, identical results) when the object's id
  // universe is too large to scatter.
  bool dense_ = false;
  std::vector<double> dense_mass_;
  std::vector<double> dense_log_;
  std::vector<uint32_t> touched_;
  uint64_t tag_ = 0;
  mutable Stats stats_;  // mutable: Loss() is logically const
};

/// Result of a nearest-candidate scan: the winning candidate's position
/// in the scanned sequence and its δI.
struct NearestCandidate {
  uint32_t index = 0;
  double loss = 0.0;
};

/// The Phase-3 inner loop: fixes `object` in the kernel, streams every
/// candidate arena row through Loss and keeps the strict-< argmin, so
/// the lowest candidate index wins ties and the result is a pure
/// function of the pair set. Phase3Assigner::AssignChunk and the serving
/// engine's assign path (single and batched) all call this one function,
/// which is what makes a served label bit-identical to the batch run's.
/// `candidate_p` and `candidate_rows` are parallel; both must be
/// non-empty.
NearestCandidate FindNearestCandidate(LossKernel* kernel, double object_p,
                                      DistributionView object_cond,
                                      std::span<const double> candidate_p,
                                      const DistributionArena& arena,
                                      std::span<const size_t> candidate_rows);

/// Sums the tallies of a set of per-lane kernels into the obs counters
/// `<prefix>.loss_calls` (work — identical at every thread count) and
/// `<prefix>.scatters` / `<prefix>.dedup_hits` (scheduling — dependent
/// on lane count and chunking). No-op while obs is disabled. Call once
/// per kernel lifetime, after all parallel regions joined.
void FlushKernelStats(const std::vector<LossKernel>& kernels,
                      const std::string& prefix);

namespace internal {

/// The two JsDivergence evaluation paths, exposed for property tests and
/// the kernel microbenchmark. `probes`, when non-null, accumulates the
/// number of id comparisons the galloping lookups perform (the
/// complexity regression tests bound it).
double JsDivergenceMergeJoin(double w1, const SparseDistribution& p,
                             double w2, const SparseDistribution& q);
double JsDivergenceAsymmetric(double w1, const SparseDistribution& p,
                              double w2, const SparseDistribution& q,
                              uint64_t* probes = nullptr);

}  // namespace internal

}  // namespace limbo::core

#endif  // LIMBO_CORE_PROB_H_
