#ifndef LIMBO_CORE_PROB_H_
#define LIMBO_CORE_PROB_H_

#include <cstdint>
#include <span>
#include <vector>

namespace limbo::core {

/// A sparse probability distribution over a discrete domain indexed by
/// uint32 ids. Entries are sorted by id and strictly positive; absent ids
/// have mass zero. This is the representation of every p(T|c) / p(V|t)
/// vector in the paper — clusters over large domains stay cheap as long as
/// their supports are small, and merges are linear in the union support.
class SparseDistribution {
 public:
  struct Entry {
    uint32_t id;
    double mass;
  };

  SparseDistribution() = default;

  /// Uniform distribution over `ids` (need not be sorted; must be unique).
  static SparseDistribution UniformOver(std::span<const uint32_t> ids);

  /// From explicit (id, mass) pairs; normalizes so masses sum to 1.
  /// Pairs need not be sorted; ids must be unique; masses must be >= 0 and
  /// not all zero.
  static SparseDistribution FromPairs(std::vector<Entry> entries);

  /// Convex combination w1*a + w2*b (w1 + w2 should be 1 for a valid
  /// distribution; the function does not renormalize). This is Eq. (2) of
  /// the paper with w1 = p(c1)/p(c*), w2 = p(c2)/p(c*).
  static SparseDistribution WeightedMerge(double w1,
                                          const SparseDistribution& a,
                                          double w2,
                                          const SparseDistribution& b);

  size_t SupportSize() const { return entries_.size(); }
  bool Empty() const { return entries_.empty(); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Mass at `id` (0 if absent). O(log support).
  double MassAt(uint32_t id) const;

  /// Sum of masses (1.0 up to rounding for a proper distribution).
  double TotalMass() const;

  /// Shannon entropy, base 2.
  double Entropy() const;

  bool operator==(const SparseDistribution& other) const {
    return entries_ == other.entries_;
  }

 private:
  std::vector<Entry> entries_;

  friend bool operator==(const Entry& a, const Entry& b);
};

inline bool operator==(const SparseDistribution::Entry& a,
                       const SparseDistribution::Entry& b) {
  return a.id == b.id && a.mass == b.mass;
}

/// Kullback–Leibler divergence D_KL[p || q], base 2. Requires the support
/// of p to be contained in the support of q; returns +inf otherwise.
double KlDivergence(const SparseDistribution& p, const SparseDistribution& q);

/// Weighted Jensen–Shannon divergence
///   JS_{w1,w2}[p, q] = w1 D_KL[p || m] + w2 D_KL[q || m],  m = w1 p + w2 q.
/// Computed in one merge pass without materializing m. Base 2; bounded by 1.
double JsDivergence(double w1, const SparseDistribution& p, double w2,
                    const SparseDistribution& q);

}  // namespace limbo::core

#endif  // LIMBO_CORE_PROB_H_
