#ifndef LIMBO_CORE_RUN_REPORT_H_
#define LIMBO_CORE_RUN_REPORT_H_

#include <string>
#include <vector>

#include "core/aib.h"
#include "core/limbo.h"
#include "obs/report.h"

namespace limbo::core {

/// The information-plane trajectory of an agglomerative merge sequence:
/// one row per merge with (step, delta_i, cumulative_loss, p_merged).
/// This is the (I(V;T), merge-cost) curve the IB literature plots; for
/// attribute grouping it is the dendrogram Q with per-merge loss.
obs::ReportSection TrajectorySection(const std::vector<Merge>& merges,
                                     std::string title = "aib_trajectory");

/// PhaseTimings as a report section. Phase-3 fields appear only when the
/// phase actually ran (timings.phase3_ran).
obs::ReportSection TimingsSection(const PhaseTimings& timings);

/// Standard report envelope: the caller's sections first, then the live
/// obs state ("spans" from the trace tree, "counters" from the registry).
/// Callers that want a per-run report should ResetTrace/ResetCounters
/// before the run they mean to describe.
obs::RunReport AssembleRunReport(std::string title,
                                 std::vector<obs::ReportSection> sections);

}  // namespace limbo::core

#endif  // LIMBO_CORE_RUN_REPORT_H_
