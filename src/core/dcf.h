#ifndef LIMBO_CORE_DCF_H_
#define LIMBO_CORE_DCF_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/prob.h"

namespace limbo::core {

/// Distributional Cluster Feature (Section 5.2): the sufficient statistics
/// of a cluster c — its prior mass p(c) and conditional p(T|c).
///
/// When `attr_counts` is non-empty the object is an *Attribute* DCF
/// (ADCF, Section 6.2): `attr_counts[a]` is O[c, a], the cumulative number
/// of occurrences of the cluster's values inside attribute a.
struct Dcf {
  double p = 0.0;
  SparseDistribution cond;
  std::vector<uint64_t> attr_counts;

  bool IsAdcf() const { return !attr_counts.empty(); }
};

/// Merges two DCFs per Equations (1) and (2):
///   p(c*)    = p(c1) + p(c2)
///   p(T|c*)  = p(c1)/p(c*) p(T|c1) + p(c2)/p(c*) p(T|c2)
/// ADCF count rows are summed elementwise.
Dcf MergeDcf(const Dcf& a, const Dcf& b);

/// Information loss of merging a and b (Equation 3):
///   δI(c1,c2) = [p(c1)+p(c2)] · D_JS[p(T|c1), p(T|c2)]
/// with JS weights p(ci)/p(c*). Non-negative; 0 iff the conditionals are
/// identical (or one side has zero mass). Evaluated through LossKernel,
/// so it is bit-identical to the batch form below for the same pair.
double InformationLoss(const Dcf& a, const Dcf& b);

/// δI(object, candidates[i]) for every candidate, through one LossKernel
/// that scatters the object once. `out.size()` must equal
/// `candidates.size()`. Equivalent to calling InformationLoss per pair —
/// exactly, bit for bit — just cheaper.
void InformationLossBatch(const Dcf& object, std::span<const Dcf> candidates,
                          std::span<double> out);

}  // namespace limbo::core

#endif  // LIMBO_CORE_DCF_H_
