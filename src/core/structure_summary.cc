#include "core/structure_summary.h"

#include <algorithm>

#include "core/info.h"
#include "core/limbo.h"
#include "core/measures.h"
#include "obs/trace.h"
#include "fd/fdep.h"
#include "fd/min_cover.h"
#include "fd/tane.h"
#include "util/strings.h"

namespace limbo::core {

util::Result<StructureSummary> SummarizeStructure(
    const relation::Relation& rel, const StructureSummaryOptions& options) {
  if (rel.NumTuples() == 0) {
    return util::Status::InvalidArgument("relation is empty");
  }
  LIMBO_OBS_SPAN(summary_span, "structure_summary");
  StructureSummary summary;
  {
    LIMBO_OBS_SPAN(profile_span, "profile");
    summary.profile = relation::Profile(rel);
  }

  const bool large = rel.NumTuples() > options.large_relation_threshold;

  // Duplicate tuples.
  DuplicateTupleOptions dup_options;
  dup_options.phi_t = options.phi_t;
  LIMBO_ASSIGN_OR_RETURN(summary.duplicates,
                         FindDuplicateTuples(rel, dup_options));

  // Value clustering, with Double Clustering on large inputs.
  ValueClusteringOptions value_options;
  value_options.phi_v = options.phi_v;
  std::vector<uint32_t> labels;
  size_t num_clusters = 0;
  if (large) {
    LIMBO_OBS_SPAN(dc_span, "double_clustering");
    const std::vector<Dcf> objects = BuildTupleObjects(rel);
    WeightedRows rows;
    for (const Dcf& o : objects) {
      rows.weights.push_back(o.p);
      rows.rows.push_back(o.cond);
    }
    const double info = MutualInformation(rows);
    LimboOptions limbo_options;
    limbo_options.phi = options.phi_t_double_clustering;
    const std::vector<Dcf> leaves = LimboPhase1(
        objects, limbo_options,
        options.phi_t_double_clustering * info /
            static_cast<double>(objects.size()));
    LIMBO_ASSIGN_OR_RETURN(labels, LimboPhase3(objects, leaves));
    num_clusters = leaves.size();
    value_options.tuple_labels = &labels;
    value_options.num_tuple_clusters = num_clusters;
  }
  LIMBO_ASSIGN_OR_RETURN(summary.values, ClusterValues(rel, value_options));

  // Attribute grouping (when CV_D is non-empty).
  if (!summary.values.duplicate_groups.empty()) {
    auto grouping = GroupAttributes(rel, summary.values);
    if (grouping.ok()) {
      summary.grouping = std::move(grouping).value();
      summary.has_grouping = true;
    }
  }

  // FD mining + minimum cover + ranking.
  std::vector<fd::FunctionalDependency> fds;
  {
    LIMBO_OBS_SPAN(mine_span, "fd_mining");
    if (large) {
      fd::TaneOptions tane_options;
      tane_options.min_lhs = 1;
      LIMBO_ASSIGN_OR_RETURN(fds, fd::Tane::Mine(rel, tane_options));
    } else {
      LIMBO_ASSIGN_OR_RETURN(fds, fd::Fdep::Mine(rel));
    }
  }
  summary.num_fds = fds.size();
  const auto cover = fd::MinimumCover(fds, /*merge_same_lhs=*/false);
  if (summary.has_grouping) {
    FdRankOptions rank_options;
    rank_options.psi = options.psi;
    LIMBO_ASSIGN_OR_RETURN(summary.ranked_cover,
                           RankFds(cover, summary.grouping, rank_options));
  } else {
    for (const auto& f : cover) {
      summary.ranked_cover.push_back({f, 0.0, false});
    }
  }
  return summary;
}

std::string StructureSummary::ToString(const relation::Relation& rel) const {
  std::string out;
  out += "=== Profile ===\n";
  out += profile.ToString();

  out += util::StrFormat(
      "\n=== Duplicate tuples (phi summaries: %zu leaves, %zu heavy) ===\n",
      duplicates.num_leaves, duplicates.num_heavy_leaves);
  if (duplicates.groups.empty()) {
    out += "  none found\n";
  }
  for (size_t g = 0; g < duplicates.groups.size() && g < 10; ++g) {
    out += "  group:";
    for (relation::TupleId t : duplicates.groups[g].tuples) {
      out += util::StrFormat(" t%u", t);
    }
    out += "\n";
  }

  out += util::StrFormat(
      "\n=== Value groups: %zu total, %zu duplicate (CV_D) ===\n",
      values.groups.size(), values.duplicate_groups.size());
  size_t shown = 0;
  for (size_t gi : values.duplicate_groups) {
    if (++shown > 10) break;
    out += "  {";
    const auto& group = values.groups[gi];
    for (size_t i = 0; i < group.values.size() && i < 6; ++i) {
      if (i) out += ", ";
      out += rel.dictionary().QualifiedName(rel.schema(), group.values[i]);
    }
    if (group.values.size() > 6) out += ", ...";
    out += "}\n";
  }

  if (has_grouping) {
    out += "\n=== Attribute dendrogram ===\n";
    out += grouping.DendrogramText(rel.schema());
  }

  out += util::StrFormat("\n=== Dependencies: %zu mined; ranked cover ===\n",
                         num_fds);
  shown = 0;
  for (const RankedFd& r : ranked_cover) {
    if (++shown > 12) break;
    const auto attrs = r.fd.lhs.Union(r.fd.rhs).ToList();
    out += util::StrFormat("  rank=%.4f%s %s  RAD=%.3f RTR=%.3f\n", r.rank,
                           r.anchored ? "*" : " ",
                           r.fd.ToString(rel.schema()).c_str(),
                           Rad(rel, attrs), Rtr(rel, attrs));
  }
  return out;
}

}  // namespace limbo::core
