#ifndef LIMBO_CORE_DCF_STREAM_H_
#define LIMBO_CORE_DCF_STREAM_H_

#include <span>
#include <vector>

#include "core/dcf.h"
#include "relation/row_source.h"
#include "relation/source_stats.h"
#include "util/result.h"

namespace limbo::core {

/// A rewindable stream of clustering objects — what the streamed LIMBO
/// pipeline consumes instead of a materialized std::vector<Dcf>. A
/// consumer pulls bounded chunks until an empty span comes back, then
/// calls Reset before the next scan. Chunking is a memory knob only:
/// every chunk size and every consumer thread count must produce
/// bit-identical results (each object's Dcf is a pure function of its
/// row, and all order-sensitive reductions happen in stream order).
class DcfStream {
 public:
  virtual ~DcfStream() = default;

  /// Total number of objects the stream yields per scan.
  virtual size_t size() const = 0;

  /// The next at-most-`max_objects` objects, or an empty span at end of
  /// scan. The span is valid until the next NextChunk/Reset call.
  virtual util::Result<std::span<const Dcf>> NextChunk(
      size_t max_objects) = 0;

  /// Rewinds to the first object.
  virtual util::Status Reset() = 0;

  /// True when pulling a chunk does real decode work against an external
  /// source (so scan counts are worth reporting); false for the zero-copy
  /// in-memory adapter.
  virtual bool IsStreaming() const { return true; }
};

/// Zero-copy adapter over a materialized object vector: chunks are
/// subspans of the caller's storage, so the vector entry points pay
/// nothing for routing through the streamed pipeline. `objects` must
/// outlive the stream.
class VectorDcfStream final : public DcfStream {
 public:
  explicit VectorDcfStream(std::span<const Dcf> objects)
      : objects_(objects) {}

  size_t size() const override { return objects_.size(); }
  util::Result<std::span<const Dcf>> NextChunk(size_t max_objects) override;
  util::Status Reset() override {
    next_ = 0;
    return util::Status::Ok();
  }
  bool IsStreaming() const override { return false; }

 private:
  std::span<const Dcf> objects_;
  size_t next_ = 0;
};

/// Decodes tuple objects (Section 5.2: p = 1/n, p(V|t) uniform over the
/// row's value ids) one chunk at a time from a RowSource, given frozen
/// stats (schema + dictionary + row count) from a counting pass or a
/// sidecar file. Only the current chunk of Dcfs plus one text row are
/// resident. Fails if a row holds a value absent from the frozen
/// dictionary or if the source yields a different row count than the
/// stats promise (a stale sidecar). `source` and `stats` must outlive
/// the stream.
class TupleObjectStream final : public DcfStream {
 public:
  TupleObjectStream(relation::RowSource& source,
                    const relation::SourceStats& stats)
      : source_(&source), stats_(&stats) {}

  size_t size() const override { return stats_->num_rows; }
  util::Result<std::span<const Dcf>> NextChunk(size_t max_objects) override;
  util::Status Reset() override;

 private:
  relation::RowSource* source_;
  const relation::SourceStats* stats_;
  size_t yielded_ = 0;  // rows decoded in the current scan
  std::vector<Dcf> chunk_;
  std::vector<std::string> fields_;
  std::vector<uint32_t> ids_;
};

}  // namespace limbo::core

#endif  // LIMBO_CORE_DCF_STREAM_H_
