#ifndef LIMBO_UTIL_LOGGING_H_
#define LIMBO_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace limbo::util {

/// Aborts with a message. Used only for programmer errors (broken
/// invariants), never for data-dependent failures, which return Status.
[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace limbo::util

/// Invariant check that is active in all build modes (unlike assert()).
#define LIMBO_CHECK(expr)                                  \
  do {                                                     \
    if (!(expr)) ::limbo::util::CheckFail(__FILE__, __LINE__, #expr); \
  } while (0)

/// Debug-only invariant check.
#ifdef NDEBUG
#define LIMBO_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define LIMBO_DCHECK(expr) LIMBO_CHECK(expr)
#endif

#endif  // LIMBO_UTIL_LOGGING_H_
