#include "util/json.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace limbo::util {

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  util::Result<JsonValue> Parse() {
    JsonValue value;
    util::Status s = ParseValue(&value);
    if (!s.ok()) return s;
    SkipWs();
    if (p_ != end_) return Fail("trailing characters after JSON value");
    return value;
  }

 private:
  util::Status Fail(const std::string& what) {
    return util::Status::InvalidArgument(
        "JSON parse error at offset " + std::to_string(offset_) + ": " + what);
  }

  void SkipWs() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      Advance();
    }
  }

  void Advance() {
    ++p_;
    ++offset_;
  }

  bool Consume(char c) {
    SkipWs();
    if (p_ == end_ || *p_ != c) return false;
    Advance();
    return true;
  }

  util::Status ParseValue(JsonValue* out) {
    SkipWs();
    if (p_ == end_) return Fail("unexpected end of input");
    switch (*p_) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        return ParseNull(out);
      default:
        return ParseNumber(out);
    }
  }

  util::Status ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    Advance();  // '{'
    if (Consume('}')) return util::Status::Ok();
    while (true) {
      SkipWs();
      if (p_ == end_ || *p_ != '"') return Fail("expected object key");
      std::string key;
      LIMBO_RETURN_IF_ERROR(ParseString(&key));
      if (!Consume(':')) return Fail("expected ':' after object key");
      JsonValue value;
      LIMBO_RETURN_IF_ERROR(ParseValue(&value));
      out->object.emplace_back(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return util::Status::Ok();
      return Fail("expected ',' or '}' in object");
    }
  }

  util::Status ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    Advance();  // '['
    if (Consume(']')) return util::Status::Ok();
    while (true) {
      JsonValue value;
      LIMBO_RETURN_IF_ERROR(ParseValue(&value));
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return util::Status::Ok();
      return Fail("expected ',' or ']' in array");
    }
  }

  util::Status ParseString(std::string* out) {
    Advance();  // '"'
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        Advance();
        if (p_ == end_) return Fail("unterminated escape");
        switch (*p_) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'u': {
            if (end_ - p_ < 5) return Fail("truncated \\u escape");
            char hex[5] = {p_[1], p_[2], p_[3], p_[4], 0};
            char* hex_end = nullptr;
            long code = std::strtol(hex, &hex_end, 16);
            if (hex_end != hex + 4) return Fail("bad \\u escape");
            if (code > 0x7f) return Fail("non-ASCII \\u escape unsupported");
            *out += static_cast<char>(code);
            Advance();
            Advance();
            Advance();
            Advance();
            break;
          }
          default:
            return Fail("unknown escape");
        }
        Advance();
      } else {
        *out += *p_;
        Advance();
      }
    }
    if (p_ == end_) return Fail("unterminated string");
    Advance();  // closing '"'
    return util::Status::Ok();
  }

  util::Status ParseKeyword(JsonValue* out) {
    out->kind = JsonValue::Kind::kBoolean;
    if (end_ - p_ >= 4 && std::strncmp(p_, "true", 4) == 0) {
      out->boolean = true;
      for (int i = 0; i < 4; ++i) Advance();
      return util::Status::Ok();
    }
    if (end_ - p_ >= 5 && std::strncmp(p_, "false", 5) == 0) {
      out->boolean = false;
      for (int i = 0; i < 5; ++i) Advance();
      return util::Status::Ok();
    }
    return Fail("bad keyword");
  }

  util::Status ParseNull(JsonValue* out) {
    if (end_ - p_ >= 4 && std::strncmp(p_, "null", 4) == 0) {
      out->kind = JsonValue::Kind::kNull;
      for (int i = 0; i < 4; ++i) Advance();
      return util::Status::Ok();
    }
    return Fail("bad keyword");
  }

  util::Status ParseNumber(JsonValue* out) {
    const char* start = p_;
    bool is_integer = true;
    if (p_ != end_ && *p_ == '-') Advance();
    while (p_ != end_ &&
           (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
            *p_ == 'e' || *p_ == 'E' || *p_ == '+' || *p_ == '-')) {
      if (*p_ == '.' || *p_ == 'e' || *p_ == 'E') is_integer = false;
      Advance();
    }
    if (p_ == start) return Fail("expected a value");
    std::string token(start, p_);
    char* parse_end = nullptr;
    if (is_integer && token[0] != '-') {
      out->kind = JsonValue::Kind::kInteger;
      out->integer = std::strtoull(token.c_str(), &parse_end, 10);
    } else {
      out->kind = JsonValue::Kind::kNumber;
      out->number = std::strtod(token.c_str(), &parse_end);
    }
    if (parse_end != token.c_str() + token.size()) return Fail("bad number");
    return util::Status::Ok();
  }

  const char* p_;
  const char* end_;
  size_t offset_ = 0;
};

}  // namespace

util::Result<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(double value, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  if (std::strpbrk(buf, ".eE") == nullptr && std::strcmp(buf, "inf") != 0 &&
      std::strcmp(buf, "-inf") != 0 && std::strcmp(buf, "nan") != 0) {
    std::strcat(buf, ".0");
  }
  *out += buf;
}

void AppendCanonicalJson(const JsonValue& value, std::string* out) {
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      *out += "null";
      return;
    case JsonValue::Kind::kBoolean:
      *out += value.boolean ? "true" : "false";
      return;
    case JsonValue::Kind::kInteger:
      *out += std::to_string(value.integer);
      return;
    case JsonValue::Kind::kNumber:
      AppendJsonNumber(value.number, out);
      return;
    case JsonValue::Kind::kString:
      AppendJsonString(value.str, out);
      return;
    case JsonValue::Kind::kArray:
      out->push_back('[');
      for (size_t i = 0; i < value.array.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendCanonicalJson(value.array[i], out);
      }
      out->push_back(']');
      return;
    case JsonValue::Kind::kObject: {
      // Sort by key only (stable), so duplicate keys keep their parse
      // order and the serialization is a pure function of the value.
      std::vector<size_t> order(value.object.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return value.object[a].first < value.object[b].first;
      });
      out->push_back('{');
      for (size_t i = 0; i < order.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendJsonString(value.object[order[i]].first, out);
        out->push_back(':');
        AppendCanonicalJson(value.object[order[i]].second, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace limbo::util
