#include "util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace limbo::util {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t b = 0;
  size_t e = input.size();
  while (b < e && (input[b] == ' ' || input[b] == '\t' || input[b] == '\r' ||
                   input[b] == '\n')) {
    ++b;
  }
  while (e > b && (input[e - 1] == ' ' || input[e - 1] == '\t' ||
                   input[e - 1] == '\r' || input[e - 1] == '\n')) {
    --e;
  }
  return input.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int len = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (len > 0) {
    out.resize(static_cast<size_t>(len));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace limbo::util
