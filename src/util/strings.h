#ifndef LIMBO_UTIL_STRINGS_H_
#define LIMBO_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace limbo::util {

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace limbo::util

#endif  // LIMBO_UTIL_STRINGS_H_
