#ifndef LIMBO_UTIL_JSON_H_
#define LIMBO_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"

namespace limbo::util {

/// A parsed JSON value. Minimal by design: the library's JSON surfaces
/// (run reports, the limbo-serve query protocol) are machine-to-machine
/// line formats, so integers and doubles stay distinct (a bare integer
/// token parses as kInteger, anything with '.', 'e' or a leading '-' as
/// kNumber) and object key order is preserved.
struct JsonValue {
  enum class Kind {
    kNull,
    kBoolean,
    kInteger,
    kNumber,
    kString,
    kArray,
    kObject
  };
  Kind kind = Kind::kNull;
  bool boolean = false;
  uint64_t integer = 0;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First value under `key` (objects only), or nullptr.
  const JsonValue* Find(const char* key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parses one complete JSON document. Trailing non-whitespace after the
/// value is an error (NDJSON framing splits lines before parsing).
util::Result<JsonValue> ParseJson(const std::string& text);

/// Appends `s` as a quoted JSON string literal (with escaping) to `out`.
void AppendJsonString(const std::string& s, std::string* out);

/// Appends a double using %.17g — survives a parse round-trip exactly —
/// always shaped as a JSON number token (integral values get ".0").
void AppendJsonNumber(double value, std::string* out);

/// Appends a canonical serialization of `value`: no whitespace, object
/// keys sorted (stably, so duplicate keys keep their relative order),
/// numbers via AppendJsonNumber. Two documents that parse to the same
/// value modulo key order and formatting canonicalize to the same bytes
/// — the property the serve-layer response cache keys rely on.
void AppendCanonicalJson(const JsonValue& value, std::string* out);

}  // namespace limbo::util

#endif  // LIMBO_UTIL_JSON_H_
