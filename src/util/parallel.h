#ifndef LIMBO_UTIL_PARALLEL_H_
#define LIMBO_UTIL_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace limbo::util {

/// Lane count used when a caller passes threads = 0: the LIMBO_THREADS
/// environment variable if set to a positive integer, otherwise
/// std::thread::hardware_concurrency() (1 if unknown). Read once and
/// cached for the process lifetime.
size_t DefaultThreadCount();

/// A small reusable pool of worker threads exposing one primitive,
/// ParallelFor. Workers are std::jthread and are spawned lazily on the
/// first dispatch that actually needs them, so a pool that only ever runs
/// serial-sized ranges costs nothing beyond its construction.
///
/// Determinism contract: ParallelFor partitions the index range
/// *statically* — chunk c of size `grain` is always executed by lane
/// c % threads() — and the body must write only to locations owned by the
/// indices it is given. Under that contract every result is bit-identical
/// to a serial run, regardless of thread count or scheduling.
class ThreadPool {
 public:
  /// threads = 0 picks DefaultThreadCount(); threads = 1 is the serial
  /// fallback (every ParallelFor body runs inline on the caller).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of logical lanes (the calling thread counts as lane 0).
  size_t threads() const { return lanes_; }

  /// Runs fn(chunk_begin, chunk_end) over a static partition of
  /// [begin, end) into chunks of size `grain` (the last chunk may be
  /// short). Blocks until every chunk has executed. Runs inline when the
  /// pool is serial or the range fits in one chunk. Not reentrant: the
  /// body must not call ParallelFor on the same pool.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// Lane-aware variant: fn(chunk_begin, chunk_end, lane), where `lane`
  /// is the executing lane in [0, threads()). Because the partition is
  /// static, chunk c always reports lane c % threads() — so per-lane
  /// scratch (e.g. a LossKernel per lane) is raced-free *and* the work
  /// each scratch sees is the same on every run. The inline path reports
  /// lane 0.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t, size_t)>& fn);

 private:
  void EnsureWorkers();
  /// Executes every chunk c with c % lanes_ == lane of the current task.
  void RunLane(size_t lane);

  size_t lanes_;
  std::vector<std::jthread> workers_;  // lanes_ - 1, spawned lazily

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stopping_ = false;
  uint64_t generation_ = 0;
  size_t active_ = 0;

  // Current task, valid while active_ > 0; published under mu_ before the
  // generation bump, read by workers after they observe the new generation.
  size_t task_begin_ = 0;
  size_t task_end_ = 0;
  size_t task_grain_ = 1;
  const std::function<void(size_t, size_t, size_t)>* task_fn_ = nullptr;
};

/// One-shot convenience over a process-wide shared pool sized by
/// DefaultThreadCount(). Prefer a local ThreadPool when issuing many
/// dispatches (e.g. once per merge step) so the lane count is explicit.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

}  // namespace limbo::util

#endif  // LIMBO_UTIL_PARALLEL_H_
