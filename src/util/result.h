#ifndef LIMBO_UTIL_RESULT_H_
#define LIMBO_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace limbo::util {

/// A value-or-error holder: either a `T` or a non-OK `Status`.
///
/// Usage:
///   Result<Relation> r = CsvReader::Read(path);
///   if (!r.ok()) return r.status();
///   Relation rel = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (the common error path).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result must not be built from an OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace limbo::util

/// Evaluates `expr` (a Result<T>), propagating the error or moving the
/// value into `lhs`.
#define LIMBO_ASSIGN_OR_RETURN(lhs, expr)            \
  LIMBO_ASSIGN_OR_RETURN_IMPL_(                      \
      LIMBO_RESULT_CONCAT_(_limbo_result, __LINE__), lhs, expr)

#define LIMBO_RESULT_CONCAT_INNER_(a, b) a##b
#define LIMBO_RESULT_CONCAT_(a, b) LIMBO_RESULT_CONCAT_INNER_(a, b)
#define LIMBO_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // LIMBO_UTIL_RESULT_H_
