#ifndef LIMBO_UTIL_STATUS_H_
#define LIMBO_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace limbo::util {

/// Error codes used across the library. Kept deliberately small: most
/// library failures are either malformed input (`kInvalidArgument`),
/// missing entities (`kNotFound`) or I/O problems (`kIoError`).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value, modeled on the RocksDB/Arrow
/// Status idiom. The library does not throw exceptions; every fallible
/// public entry point returns a `Status` or a `Result<T>`.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

}  // namespace limbo::util

/// Propagates a non-OK Status from the current function.
#define LIMBO_RETURN_IF_ERROR(expr)                      \
  do {                                                   \
    ::limbo::util::Status _limbo_status = (expr);        \
    if (!_limbo_status.ok()) return _limbo_status;       \
  } while (0)

#endif  // LIMBO_UTIL_STATUS_H_
