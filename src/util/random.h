#ifndef LIMBO_UTIL_RANDOM_H_
#define LIMBO_UTIL_RANDOM_H_

#include <cstdint>

namespace limbo::util {

/// Deterministic, seedable PRNG (xoshiro256**). Every data generator and
/// randomized experiment in the repo draws from this generator so that
/// benches and tests are exactly reproducible across platforms (unlike
/// std::mt19937 distributions, whose outputs are not portable).
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-like skewed index in [0, n): rank r drawn with weight 1/(r+1)^s.
  /// Uses inverse-CDF over precomputable harmonic weights is avoided to stay
  /// allocation-free; instead uses rejection-free approximate inversion,
  /// adequate for workload generation.
  uint64_t Zipf(uint64_t n, double s);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace limbo::util

#endif  // LIMBO_UTIL_RANDOM_H_
