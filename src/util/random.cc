#include "util/random.h"

#include <cmath>

namespace limbo::util {

uint64_t Random::Zipf(uint64_t n, double s) {
  if (n <= 1) return 0;
  // Approximate inverse-CDF sampling for the Zipf(s) distribution using the
  // continuous analogue: P(X <= x) ~ (x^{1-s} - 1) / (n^{1-s} - 1), s != 1.
  const double u = NextDouble();
  double x;
  if (std::fabs(s - 1.0) < 1e-9) {
    x = std::exp(u * std::log(static_cast<double>(n)));
  } else {
    const double oneMinusS = 1.0 - s;
    const double nPow = std::pow(static_cast<double>(n), oneMinusS);
    x = std::pow(u * (nPow - 1.0) + 1.0, 1.0 / oneMinusS);
  }
  // The continuous rank x lives in [1, n]; shift to 0-based.
  if (x < 1.0) x = 1.0;
  uint64_t idx = static_cast<uint64_t>(x) - 1;
  if (idx >= n) idx = n - 1;
  return idx;
}

}  // namespace limbo::util
