#include "util/parallel.h"

#include <algorithm>
#include <cstdlib>

namespace limbo::util {

size_t DefaultThreadCount() {
  static const size_t cached = [] {
    if (const char* env = std::getenv("LIMBO_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1) {
        return static_cast<size_t>(v);
      }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? size_t{1} : static_cast<size_t>(hw);
  }();
  return cached;
}

ThreadPool::ThreadPool(size_t threads)
    : lanes_(threads == 0 ? DefaultThreadCount() : threads) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  // std::jthread joins on destruction.
}

void ThreadPool::EnsureWorkers() {
  if (!workers_.empty() || lanes_ <= 1) return;
  workers_.reserve(lanes_ - 1);
  for (size_t lane = 1; lane < lanes_; ++lane) {
    workers_.emplace_back([this, lane] {
      uint64_t seen = 0;
      std::unique_lock<std::mutex> lock(mu_);
      while (true) {
        work_cv_.wait(lock,
                      [&] { return stopping_ || generation_ != seen; });
        if (stopping_) return;
        seen = generation_;
        lock.unlock();
        RunLane(lane);
        lock.lock();
        if (--active_ == 0) done_cv_.notify_one();
      }
    });
  }
}

void ThreadPool::RunLane(size_t lane) {
  for (size_t chunk = lane;; chunk += lanes_) {
    const size_t begin = task_begin_ + chunk * task_grain_;
    if (begin >= task_end_) break;
    const size_t end = std::min(begin + task_grain_, task_end_);
    (*task_fn_)(begin, end, lane);
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  ParallelFor(begin, end, grain,
              [&fn](size_t lo, size_t hi, size_t) { fn(lo, hi); });
}

void ThreadPool::ParallelFor(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t chunks = (end - begin + grain - 1) / grain;
  if (lanes_ <= 1 || chunks <= 1) {
    fn(begin, end, 0);
    return;
  }
  EnsureWorkers();
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_begin_ = begin;
    task_end_ = end;
    task_grain_ = grain;
    task_fn_ = &fn;
    active_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  RunLane(0);  // the caller is lane 0
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_ == 0; });
  task_fn_ = nullptr;
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  static ThreadPool shared(0);
  shared.ParallelFor(begin, end, grain, fn);
}

}  // namespace limbo::util
