// Reproduces Table 4: horizontal partitioning of the DBLP relation,
// projected onto the seven non-NULL-heavy attributes, into k = 3 groups
// (the paper's "natural" k), plus the delta-I statistics behind the
// choice-of-k heuristic and the Phase-3 information loss.
//
// Expected shape (paper): clusters of sizes 35892 / 13979 / 129 —
// conference publications, journal publications and a small residue —
// retaining ~90% of the summaries' information (9.45% loss).
//
// Documented deviation: in our synthetic DBLP the 0.26%-mass misc class
// merges early (its absorption costs the IB objective at most
// (p_misc+p_big)*H(w) ≈ 0.03 bits, less than splitting the conference
// class), so the third greedy cluster splits the conference class by
// year range instead of isolating the misc tail. The conference/journal
// separation — the crossover that matters for Tables 5/6 — is exact.

#include <cstdio>

#include "bench_util.h"
#include "core/horizontal_partition.h"
#include "datagen/dblp.h"
#include "relation/ops.h"

namespace {
using namespace limbo;  // NOLINT
}  // namespace

int main() {
  bench::Banner("Table 4 — horizontal partitioning of DBLP",
                "Projection onto {Author, Pages, BookTitle, Year, Volume, "
                "Journal, Number}; k = 3.");

  datagen::DblpOptions gen;
  gen.target_tuples = 50000;
  const relation::Relation full = datagen::GenerateDblp(gen);
  auto projected = relation::ProjectNames(
      full, {"Author", "Pages", "BookTitle", "Year", "Volume", "Journal",
             "Number"});

  core::HorizontalPartitionOptions options;
  options.phi = 0.5;
  options.k = 3;  // the paper's chosen "natural" k
  options.max_k = 8;
  auto result = core::HorizontallyPartition(*projected, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nchoice-of-k statistics (Section 6.1.2 heuristic):\n");
  std::printf("  %-5s %-10s %-14s %-12s\n", "k", "deltaI", "H(C_k)",
              "H(C_k|V)");
  for (const auto& s : result->stats) {
    std::printf("  %-5zu %-10.5f %-14.5f %-12.5f\n", s.k, s.delta_i,
                s.cluster_entropy, s.conditional_entropy);
  }

  // Kind composition from the generator's ground truth.
  const auto book_title = full.schema().Find("BookTitle").value();
  const auto journal = full.schema().Find("Journal").value();
  std::printf("\n%-9s %-9s %-10s %-12s %-9s %-9s\n", "Cluster", "Tuples",
              "Values", "Conference", "Journal", "Misc");
  for (size_t c = 0; c < result->chosen_k; ++c) {
    size_t conf = 0;
    size_t jour = 0;
    size_t misc = 0;
    for (relation::TupleId t = 0; t < full.NumTuples(); ++t) {
      if (result->assignments[t] != c) continue;
      if (!full.TextAt(t, book_title).empty()) {
        ++conf;
      } else if (!full.TextAt(t, journal).empty()) {
        ++jour;
      } else {
        ++misc;
      }
    }
    std::printf("c%-8zu %-9zu %-10zu %-12zu %-9zu %-9zu\n", c + 1,
                result->cluster_sizes[c], result->cluster_value_counts[c],
                conf, jour, misc);
  }

  std::printf("\nPaper's Table 4: c1=35892 tuples/43478 values, "
              "c2=13979/21167, c3=129/326\n");
  bench::PaperVsMeasured("Phase-3 info loss vs summaries (%)", 9.45,
                         100.0 * result->info_loss_vs_leaves);
  std::printf(
      "  (this metric is highly sensitive to the Phase-1 granularity and "
      "to how I is accounted; with exact base-2 I over %zu summaries most "
      "of the per-tuple information necessarily disappears at k=3 — the "
      "robust quantity is the clean conference/journal separation above)\n",
      result->num_leaves);
  std::printf(
      "\nShape check: the conference mass (~72%%) and journal mass "
      "(~28%%) separate cleanly; see header comment for the documented "
      "misc-tail deviation.\n");
  return 0;
}
