// Ablation (Section 8 "Parameters"): the paper reports that the DCF-tree
// branching factor B "does not significantly affect the quality of the
// clustering" and fixes B = 4 for insertion-time reasons (smaller B =
// taller tree = costlier inserts). This driver sweeps B on planted-
// cluster data and reports clustering accuracy and Phase-1 effort.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/limbo.h"
#include "util/random.h"

namespace {

using namespace limbo;  // NOLINT

std::vector<core::Dcf> PlantedObjects(size_t n, size_t groups,
                                      uint64_t seed) {
  util::Random rng(seed);
  std::vector<core::Dcf> objects;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t base = static_cast<uint32_t>(i % groups) * 50;
    std::vector<uint32_t> support;
    for (uint32_t slot = 0; slot < 6; ++slot) {
      support.push_back(base + slot * 6 +
                        static_cast<uint32_t>(rng.Uniform(4)));
    }
    core::Dcf d;
    d.p = 1.0 / static_cast<double>(n);
    d.cond = core::SparseDistribution::UniformOver(support);
    objects.push_back(std::move(d));
  }
  return objects;
}

/// Fraction of object pairs from the same planted group that share a
/// cluster label (pairwise recall).
double PairwiseRecall(const std::vector<uint32_t>& labels, size_t groups) {
  size_t same = 0;
  size_t total = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    for (size_t j = i + 1; j < labels.size(); ++j) {
      if (i % groups != j % groups) continue;
      ++total;
      if (labels[i] == labels[j]) ++same;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(same) / total;
}

}  // namespace

int main() {
  bench::Banner("Ablation — DCF-tree branching factor B",
                "The paper fixes B = 4, reporting that B barely affects "
                "quality; smaller B costs more per insert.");

  const size_t kN = 8000;
  const size_t kGroups = 6;
  const auto objects = PlantedObjects(kN, kGroups, 77);

  std::printf("\n%-5s %-9s %-10s %-12s %-12s\n", "B", "leaves", "height",
              "recall", "phase1 ms");
  for (int branching : {2, 4, 8, 16, 32}) {
    core::LimboOptions options;
    options.phi = 0.5;
    options.branching = branching;
    options.k = kGroups;
    const auto t0 = std::chrono::steady_clock::now();
    auto result = core::RunLimbo(objects, options);
    const auto t1 = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-5d %-9zu %-10zu %-12.3f %-12.2f\n", branching,
                result->leaves.size(), result->tree_stats.height,
                PairwiseRecall(result->assignments, kGroups),
                std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::printf(
      "\nShape check: recall stays (near-)constant across B — the paper's "
      "claim — while the tree height shrinks and the insertion cost "
      "varies with B.\n");
  return 0;
}
