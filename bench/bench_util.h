#ifndef LIMBO_BENCH_BENCH_UTIL_H_
#define LIMBO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/info.h"
#include "core/limbo.h"
#include "core/tuple_clustering.h"
#include "datagen/error_inject.h"
#include "relation/relation.h"

namespace limbo::bench {

/// Prints a reproduction-driver banner.
inline void Banner(const char* experiment, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("==============================================================\n");
}

/// Prints one "paper vs measured" row.
inline void PaperVsMeasured(const std::string& label, double paper,
                            double measured) {
  std::printf("  %-44s paper=%-8.3f measured=%-8.3f\n", label.c_str(), paper,
              measured);
}

/// How many injected dirty tuples ended up grouped with their source.
inline size_t CountRecoveredTuples(
    const core::DuplicateTupleReport& report,
    const std::vector<datagen::DirtyRecord>& records) {
  size_t found = 0;
  for (const auto& record : records) {
    for (const auto& group : report.groups) {
      bool has_dirty = false;
      bool has_source = false;
      for (relation::TupleId t : group.tuples) {
        has_dirty |= (t == record.dirty_id);
        has_source |= (t == record.source_id);
      }
      if (has_dirty && has_source) {
        ++found;
        break;
      }
    }
  }
  return found;
}

/// One row of a thread-scaling sweep: the lane count and the phase
/// timings a LIMBO run produced with it.
struct ThreadScalingRow {
  size_t threads = 1;
  core::PhaseTimings timings;
};

/// Emits a thread-scaling sweep as one JSON object on stdout:
/// {"benchmark": ..., "tuples": ..., "leaves": ..., "deterministic": ...,
///  "results": [{"threads": t, "phase1_seconds": ..., ...}, ...]}.
/// `deterministic` reports whether every run was bit-identical to the
/// serial baseline (merge sequence and Phase-3 assignments).
inline void PrintThreadScalingJson(const char* benchmark, size_t tuples,
                                   size_t leaves, bool deterministic,
                                   const std::vector<ThreadScalingRow>& rows) {
  std::printf("{\"benchmark\": \"%s\", \"tuples\": %zu, \"leaves\": %zu, "
              "\"deterministic\": %s, \"results\": [",
              benchmark, tuples, leaves, deterministic ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const core::PhaseTimings& t = rows[i].timings;
    std::printf(
        "%s{\"threads\": %zu, \"phase1_seconds\": %.6f, "
        "\"phase2_seconds\": %.6f, \"phase3_seconds\": %.6f, "
        "\"phase2_distance_evals\": %llu}",
        i == 0 ? "" : ", ", rows[i].threads, t.phase1_seconds,
        t.phase2_seconds, t.phase3_seconds,
        static_cast<unsigned long long>(t.phase2_distance_evals));
  }
  std::printf("]}\n");
}

/// One row of the `--kernel` microbenchmark: a support-size shape and
/// the measured per-evaluation cost of the per-pair reference
/// formulation vs the batch LossKernel.
struct KernelCaseRow {
  std::string name;
  size_t object_support = 0;
  size_t candidate_support = 0;
  double per_pair_ns_per_eval = 0.0;
  double batch_ns_per_eval = 0.0;
  double max_abs_diff = 0.0;  // batch vs per-pair, should be ~0
};

/// End-to-end Phase-2 + Phase-3 timings of the two dispatch modes at one
/// input size, single-threaded.
struct KernelEndToEndRow {
  size_t tuples = 0;
  size_t leaves = 0;
  double phase2_per_pair_seconds = 0.0;
  double phase2_batch_seconds = 0.0;
  double phase3_per_pair_seconds = 0.0;
  double phase3_batch_seconds = 0.0;
  bool bit_identical = false;
};

/// Emits the kernel benchmark as one JSON object on stdout.
inline void PrintKernelJson(const std::vector<KernelCaseRow>& micro,
                            const KernelEndToEndRow& e2e) {
  std::printf("{\"benchmark\": \"limbo_kernel\", \"micro\": [");
  for (size_t i = 0; i < micro.size(); ++i) {
    const KernelCaseRow& r = micro[i];
    const double speedup = r.batch_ns_per_eval > 0.0
                               ? r.per_pair_ns_per_eval / r.batch_ns_per_eval
                               : 0.0;
    std::printf(
        "%s{\"case\": \"%s\", \"object_support\": %zu, "
        "\"candidate_support\": %zu, \"per_pair_ns_per_eval\": %.1f, "
        "\"batch_ns_per_eval\": %.1f, \"speedup\": %.2f, "
        "\"max_abs_diff\": %.3g}",
        i == 0 ? "" : ", ", r.name.c_str(), r.object_support,
        r.candidate_support, r.per_pair_ns_per_eval, r.batch_ns_per_eval,
        speedup, r.max_abs_diff);
  }
  const double p2_speedup = e2e.phase2_batch_seconds > 0.0
                                ? e2e.phase2_per_pair_seconds /
                                      e2e.phase2_batch_seconds
                                : 0.0;
  const double p3_speedup = e2e.phase3_batch_seconds > 0.0
                                ? e2e.phase3_per_pair_seconds /
                                      e2e.phase3_batch_seconds
                                : 0.0;
  std::printf(
      "], \"end_to_end\": {\"tuples\": %zu, \"leaves\": %zu, "
      "\"phase2_per_pair_seconds\": %.6f, \"phase2_batch_seconds\": %.6f, "
      "\"phase2_speedup\": %.2f, \"phase3_per_pair_seconds\": %.6f, "
      "\"phase3_batch_seconds\": %.6f, \"phase3_speedup\": %.2f, "
      "\"bit_identical\": %s}}\n",
      e2e.tuples, e2e.leaves, e2e.phase2_per_pair_seconds,
      e2e.phase2_batch_seconds, p2_speedup, e2e.phase3_per_pair_seconds,
      e2e.phase3_batch_seconds, p3_speedup,
      e2e.bit_identical ? "true" : "false");
}

/// Tuple-cluster labels from a Phase-1 + Phase-3 run at the given φ_T
/// (used as the Double Clustering input of Section 6.2).
inline std::vector<uint32_t> TupleClusterLabels(const relation::Relation& rel,
                                                double phi_t,
                                                size_t* num_clusters) {
  const std::vector<core::Dcf> objects = core::BuildTupleObjects(rel);
  core::WeightedRows rows;
  for (const core::Dcf& o : objects) {
    rows.weights.push_back(o.p);
    rows.rows.push_back(o.cond);
  }
  const double info = core::MutualInformation(rows);
  core::LimboOptions options;
  options.phi = phi_t;
  const double threshold =
      phi_t * info / static_cast<double>(objects.size());
  const std::vector<core::Dcf> leaves =
      core::LimboPhase1(objects, options, threshold);
  auto labels = core::LimboPhase3(objects, leaves);
  *num_clusters = leaves.size();
  return std::move(labels).value();
}

}  // namespace limbo::bench

#endif  // LIMBO_BENCH_BENCH_UTIL_H_
