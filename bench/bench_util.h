#ifndef LIMBO_BENCH_BENCH_UTIL_H_
#define LIMBO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/info.h"
#include "core/limbo.h"
#include "core/tuple_clustering.h"
#include "datagen/error_inject.h"
#include "relation/relation.h"

namespace limbo::bench {

/// Prints a reproduction-driver banner.
inline void Banner(const char* experiment, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("==============================================================\n");
}

/// Prints one "paper vs measured" row.
inline void PaperVsMeasured(const std::string& label, double paper,
                            double measured) {
  std::printf("  %-44s paper=%-8.3f measured=%-8.3f\n", label.c_str(), paper,
              measured);
}

/// How many injected dirty tuples ended up grouped with their source.
inline size_t CountRecoveredTuples(
    const core::DuplicateTupleReport& report,
    const std::vector<datagen::DirtyRecord>& records) {
  size_t found = 0;
  for (const auto& record : records) {
    for (const auto& group : report.groups) {
      bool has_dirty = false;
      bool has_source = false;
      for (relation::TupleId t : group.tuples) {
        has_dirty |= (t == record.dirty_id);
        has_source |= (t == record.source_id);
      }
      if (has_dirty && has_source) {
        ++found;
        break;
      }
    }
  }
  return found;
}

/// Tuple-cluster labels from a Phase-1 + Phase-3 run at the given φ_T
/// (used as the Double Clustering input of Section 6.2).
inline std::vector<uint32_t> TupleClusterLabels(const relation::Relation& rel,
                                                double phi_t,
                                                size_t* num_clusters) {
  const std::vector<core::Dcf> objects = core::BuildTupleObjects(rel);
  core::WeightedRows rows;
  for (const core::Dcf& o : objects) {
    rows.weights.push_back(o.p);
    rows.rows.push_back(o.cond);
  }
  const double info = core::MutualInformation(rows);
  core::LimboOptions options;
  options.phi = phi_t;
  const double threshold =
      phi_t * info / static_cast<double>(objects.size());
  const std::vector<core::Dcf> leaves =
      core::LimboPhase1(objects, options, threshold);
  auto labels = core::LimboPhase3(objects, leaves);
  *num_clusters = leaves.size();
  return std::move(labels).value();
}

}  // namespace limbo::bench

#endif  // LIMBO_BENCH_BENCH_UTIL_H_
