#ifndef LIMBO_BENCH_BENCH_UTIL_H_
#define LIMBO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/info.h"
#include "core/limbo.h"
#include "core/tuple_clustering.h"
#include "datagen/error_inject.h"
#include "relation/relation.h"

namespace limbo::bench {

/// Prints a reproduction-driver banner.
inline void Banner(const char* experiment, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("==============================================================\n");
}

/// Prints one "paper vs measured" row.
inline void PaperVsMeasured(const std::string& label, double paper,
                            double measured) {
  std::printf("  %-44s paper=%-8.3f measured=%-8.3f\n", label.c_str(), paper,
              measured);
}

/// How many injected dirty tuples ended up grouped with their source.
inline size_t CountRecoveredTuples(
    const core::DuplicateTupleReport& report,
    const std::vector<datagen::DirtyRecord>& records) {
  size_t found = 0;
  for (const auto& record : records) {
    for (const auto& group : report.groups) {
      bool has_dirty = false;
      bool has_source = false;
      for (relation::TupleId t : group.tuples) {
        has_dirty |= (t == record.dirty_id);
        has_source |= (t == record.source_id);
      }
      if (has_dirty && has_source) {
        ++found;
        break;
      }
    }
  }
  return found;
}

/// One row of a thread-scaling sweep: the lane count and the phase
/// timings a LIMBO run produced with it.
struct ThreadScalingRow {
  size_t threads = 1;
  core::PhaseTimings timings;
};

/// Emits a thread-scaling sweep as one JSON object on stdout:
/// {"benchmark": ..., "tuples": ..., "leaves": ..., "deterministic": ...,
///  "results": [{"threads": t, "phase1_seconds": ..., ...}, ...]}.
/// `deterministic` reports whether every run was bit-identical to the
/// serial baseline (merge sequence and Phase-3 assignments).
inline void PrintThreadScalingJson(const char* benchmark, size_t tuples,
                                   size_t leaves, bool deterministic,
                                   const std::vector<ThreadScalingRow>& rows) {
  std::printf("{\"benchmark\": \"%s\", \"tuples\": %zu, \"leaves\": %zu, "
              "\"deterministic\": %s, \"results\": [",
              benchmark, tuples, leaves, deterministic ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const core::PhaseTimings& t = rows[i].timings;
    std::printf(
        "%s{\"threads\": %zu, \"phase1_seconds\": %.6f, "
        "\"phase2_seconds\": %.6f, \"phase3_seconds\": %.6f, "
        "\"phase2_distance_evals\": %llu}",
        i == 0 ? "" : ", ", rows[i].threads, t.phase1_seconds,
        t.phase2_seconds, t.phase3_seconds,
        static_cast<unsigned long long>(t.phase2_distance_evals));
  }
  std::printf("]}\n");
}

/// One row of the `--kernel` microbenchmark: a support-size shape and
/// the measured per-evaluation cost of the per-pair reference
/// formulation vs the batch LossKernel.
struct KernelCaseRow {
  std::string name;
  size_t object_support = 0;
  size_t candidate_support = 0;
  double per_pair_ns_per_eval = 0.0;
  double batch_ns_per_eval = 0.0;
  double max_abs_diff = 0.0;  // batch vs per-pair, should be ~0
};

/// End-to-end Phase-2 + Phase-3 timings of the two dispatch modes at one
/// input size, single-threaded.
struct KernelEndToEndRow {
  size_t tuples = 0;
  size_t leaves = 0;
  double phase2_per_pair_seconds = 0.0;
  double phase2_batch_seconds = 0.0;
  double phase3_per_pair_seconds = 0.0;
  double phase3_batch_seconds = 0.0;
  bool bit_identical = false;
};

/// Emits the kernel benchmark as one JSON object on stdout.
inline void PrintKernelJson(const std::vector<KernelCaseRow>& micro,
                            const KernelEndToEndRow& e2e) {
  std::printf("{\"benchmark\": \"limbo_kernel\", \"micro\": [");
  for (size_t i = 0; i < micro.size(); ++i) {
    const KernelCaseRow& r = micro[i];
    const double speedup = r.batch_ns_per_eval > 0.0
                               ? r.per_pair_ns_per_eval / r.batch_ns_per_eval
                               : 0.0;
    std::printf(
        "%s{\"case\": \"%s\", \"object_support\": %zu, "
        "\"candidate_support\": %zu, \"per_pair_ns_per_eval\": %.1f, "
        "\"batch_ns_per_eval\": %.1f, \"speedup\": %.2f, "
        "\"max_abs_diff\": %.3g}",
        i == 0 ? "" : ", ", r.name.c_str(), r.object_support,
        r.candidate_support, r.per_pair_ns_per_eval, r.batch_ns_per_eval,
        speedup, r.max_abs_diff);
  }
  const double p2_speedup = e2e.phase2_batch_seconds > 0.0
                                ? e2e.phase2_per_pair_seconds /
                                      e2e.phase2_batch_seconds
                                : 0.0;
  const double p3_speedup = e2e.phase3_batch_seconds > 0.0
                                ? e2e.phase3_per_pair_seconds /
                                      e2e.phase3_batch_seconds
                                : 0.0;
  std::printf(
      "], \"end_to_end\": {\"tuples\": %zu, \"leaves\": %zu, "
      "\"phase2_per_pair_seconds\": %.6f, \"phase2_batch_seconds\": %.6f, "
      "\"phase2_speedup\": %.2f, \"phase3_per_pair_seconds\": %.6f, "
      "\"phase3_batch_seconds\": %.6f, \"phase3_speedup\": %.2f, "
      "\"bit_identical\": %s}}\n",
      e2e.tuples, e2e.leaves, e2e.phase2_per_pair_seconds,
      e2e.phase2_batch_seconds, p2_speedup, e2e.phase3_per_pair_seconds,
      e2e.phase3_batch_seconds, p3_speedup,
      e2e.bit_identical ? "true" : "false");
}

/// FNV-1a mixing helpers for the result checksum below.
inline void HashMix(uint64_t* h, const void* data, size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    *h ^= p[i];
    *h *= 1099511628211ull;
  }
}
inline void HashDouble(uint64_t* h, double v) { HashMix(h, &v, sizeof v); }
inline void HashU64(uint64_t* h, uint64_t v) { HashMix(h, &v, sizeof v); }

/// FNV-1a checksum over every semantically meaningful bit of a
/// LimboResult: I(V;T), the threshold, the leaf DCFs, the merge sequence,
/// the representatives, and the per-object labels and losses. Two runs
/// are bit-identical iff their checksums match, which lets the `--stream`
/// benchmark compare arms that ran in separate processes.
inline uint64_t HashLimboResult(const core::LimboResult& r) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  HashDouble(&h, r.mutual_information);
  HashDouble(&h, r.threshold);
  auto hash_dcfs = [&h](const std::vector<core::Dcf>& dcfs) {
    HashU64(&h, dcfs.size());
    for (const core::Dcf& d : dcfs) {
      HashDouble(&h, d.p);
      for (const auto& e : d.cond.entries()) {
        HashU64(&h, e.id);
        HashDouble(&h, e.mass);
      }
    }
  };
  hash_dcfs(r.leaves);
  HashU64(&h, r.aib.merges().size());
  for (const core::Merge& m : r.aib.merges()) {
    HashU64(&h, m.left);
    HashU64(&h, m.right);
    HashU64(&h, m.merged);
    HashDouble(&h, m.delta_i);
    HashDouble(&h, m.cumulative_loss);
  }
  hash_dcfs(r.representatives);
  for (uint32_t label : r.assignments) HashU64(&h, label);
  for (double loss : r.assignment_loss) HashDouble(&h, loss);
  return h;
}

/// One arm of the `--stream` benchmark, measured in its own child process
/// so ru_maxrss isolates that arm's peak instead of the process maximum
/// across both arms.
struct StreamArmRow {
  std::string arm;
  double seconds = 0.0;
  unsigned long long peak_rss_kb = 0;
  size_t leaves = 0;
  uint64_t checksum = 0;
};

/// Prints one arm as a single JSON line (the child-process protocol of
/// the `--stream` benchmark; the parent parses exactly this shape).
inline void PrintStreamArmJson(const StreamArmRow& r) {
  std::printf(
      "{\"arm\": \"%s\", \"seconds\": %.6f, \"peak_rss_kb\": %llu, "
      "\"leaves\": %zu, \"checksum\": \"%016llx\"}\n",
      r.arm.c_str(), r.seconds, r.peak_rss_kb, r.leaves,
      static_cast<unsigned long long>(r.checksum));
}

/// Emits the combined `--stream` benchmark record on stdout:
/// streamed-vs-materialized peak RSS and wall time plus the checksum
/// equivalence verdict. This is what BENCH_stream.json records.
inline void PrintStreamJson(size_t tuples, size_t k, bool equivalent,
                            const std::vector<StreamArmRow>& arms) {
  double streamed_rss = 0.0;
  double materialized_rss = 0.0;
  for (const StreamArmRow& r : arms) {
    if (r.arm == "streamed") streamed_rss = static_cast<double>(r.peak_rss_kb);
    if (r.arm == "materialized") {
      materialized_rss = static_cast<double>(r.peak_rss_kb);
    }
  }
  const double rss_ratio =
      streamed_rss > 0.0 ? materialized_rss / streamed_rss : 0.0;
  std::printf("{\"benchmark\": \"limbo_stream\", \"tuples\": %zu, "
              "\"k\": %zu, \"equivalent\": %s, \"rss_ratio\": %.2f, "
              "\"arms\": [",
              tuples, k, equivalent ? "true" : "false", rss_ratio);
  for (size_t i = 0; i < arms.size(); ++i) {
    const StreamArmRow& r = arms[i];
    std::printf(
        "%s{\"arm\": \"%s\", \"seconds\": %.6f, \"peak_rss_kb\": %llu, "
        "\"leaves\": %zu, \"checksum\": \"%016llx\"}",
        i == 0 ? "" : ", ", r.arm.c_str(), r.seconds, r.peak_rss_kb, r.leaves,
        static_cast<unsigned long long>(r.checksum));
  }
  std::printf("]}\n");
}

/// Tuple-cluster labels from a Phase-1 + Phase-3 run at the given φ_T
/// (used as the Double Clustering input of Section 6.2).
inline std::vector<uint32_t> TupleClusterLabels(const relation::Relation& rel,
                                                double phi_t,
                                                size_t* num_clusters) {
  const std::vector<core::Dcf> objects = core::BuildTupleObjects(rel);
  core::WeightedRows rows;
  for (const core::Dcf& o : objects) {
    rows.weights.push_back(o.p);
    rows.rows.push_back(o.cond);
  }
  const double info = core::MutualInformation(rows);
  core::LimboOptions options;
  options.phi = phi_t;
  const double threshold =
      phi_t * info / static_cast<double>(objects.size());
  const std::vector<core::Dcf> leaves =
      core::LimboPhase1(objects, options, threshold);
  auto labels = core::LimboPhase3(objects, leaves);
  *num_clusters = leaves.size();
  return std::move(labels).value();
}

}  // namespace limbo::bench

#endif  // LIMBO_BENCH_BENCH_UTIL_H_
