#ifndef LIMBO_BENCH_BENCH_UTIL_H_
#define LIMBO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/info.h"
#include "core/limbo.h"
#include "core/tuple_clustering.h"
#include "datagen/error_inject.h"
#include "relation/relation.h"

namespace limbo::bench {

/// Prints a reproduction-driver banner.
inline void Banner(const char* experiment, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("==============================================================\n");
}

/// Prints one "paper vs measured" row.
inline void PaperVsMeasured(const std::string& label, double paper,
                            double measured) {
  std::printf("  %-44s paper=%-8.3f measured=%-8.3f\n", label.c_str(), paper,
              measured);
}

/// How many injected dirty tuples ended up grouped with their source.
inline size_t CountRecoveredTuples(
    const core::DuplicateTupleReport& report,
    const std::vector<datagen::DirtyRecord>& records) {
  size_t found = 0;
  for (const auto& record : records) {
    for (const auto& group : report.groups) {
      bool has_dirty = false;
      bool has_source = false;
      for (relation::TupleId t : group.tuples) {
        has_dirty |= (t == record.dirty_id);
        has_source |= (t == record.source_id);
      }
      if (has_dirty && has_source) {
        ++found;
        break;
      }
    }
  }
  return found;
}

/// One row of a thread-scaling sweep: the lane count and the phase
/// timings a LIMBO run produced with it.
struct ThreadScalingRow {
  size_t threads = 1;
  core::PhaseTimings timings;
};

/// Emits a thread-scaling sweep as one JSON object on stdout:
/// {"benchmark": ..., "tuples": ..., "leaves": ..., "deterministic": ...,
///  "results": [{"threads": t, "phase1_seconds": ..., ...}, ...]}.
/// `deterministic` reports whether every run was bit-identical to the
/// serial baseline (merge sequence and Phase-3 assignments).
inline void PrintThreadScalingJson(const char* benchmark, size_t tuples,
                                   size_t leaves, bool deterministic,
                                   const std::vector<ThreadScalingRow>& rows) {
  std::printf("{\"benchmark\": \"%s\", \"tuples\": %zu, \"leaves\": %zu, "
              "\"deterministic\": %s, \"results\": [",
              benchmark, tuples, leaves, deterministic ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const core::PhaseTimings& t = rows[i].timings;
    std::printf(
        "%s{\"threads\": %zu, \"phase1_seconds\": %.6f, "
        "\"phase2_seconds\": %.6f, \"phase3_seconds\": %.6f, "
        "\"phase2_distance_evals\": %llu}",
        i == 0 ? "" : ", ", rows[i].threads, t.phase1_seconds,
        t.phase2_seconds, t.phase3_seconds,
        static_cast<unsigned long long>(t.phase2_distance_evals));
  }
  std::printf("]}\n");
}

/// Tuple-cluster labels from a Phase-1 + Phase-3 run at the given φ_T
/// (used as the Double Clustering input of Section 6.2).
inline std::vector<uint32_t> TupleClusterLabels(const relation::Relation& rel,
                                                double phi_t,
                                                size_t* num_clusters) {
  const std::vector<core::Dcf> objects = core::BuildTupleObjects(rel);
  core::WeightedRows rows;
  for (const core::Dcf& o : objects) {
    rows.weights.push_back(o.p);
    rows.rows.push_back(o.cond);
  }
  const double info = core::MutualInformation(rows);
  core::LimboOptions options;
  options.phi = phi_t;
  const double threshold =
      phi_t * info / static_cast<double>(objects.size());
  const std::vector<core::Dcf> leaves =
      core::LimboPhase1(objects, options, threshold);
  auto labels = core::LimboPhase3(objects, leaves);
  *num_clusters = leaves.size();
  return std::move(labels).value();
}

}  // namespace limbo::bench

#endif  // LIMBO_BENCH_BENCH_UTIL_H_
