// Ablation (Section 8.1.2 remark): at phi_V = 0 the value clustering
// finds exactly the perfectly co-occurring value groups, aligning it with
// frequent-itemset counting [2]. This driver verifies the alignment on
// the DB2 sample and compares the work done by the two approaches.

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/value_clustering.h"
#include "datagen/db2_sample.h"
#include "mining/apriori.h"

namespace {

using namespace limbo;  // NOLINT

double Ms(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

int main() {
  bench::Banner("Ablation — phi_V = 0 value clustering vs Apriori",
                "Perfect co-occurrence groups == frequent itemsets with "
                "support equal to their members'.");

  auto rel = datagen::Db2Sample::JoinedRelation();

  const auto t0 = std::chrono::steady_clock::now();
  auto clusters = core::ClusterValues(*rel, {});
  const auto t1 = std::chrono::steady_clock::now();
  mining::AprioriOptions options;
  options.min_support = 2;
  options.max_size = 4;
  auto itemsets = mining::MineFrequentItemsets(*rel, options);
  const auto t2 = std::chrono::steady_clock::now();
  if (!clusters.ok() || !itemsets.ok()) return 1;

  size_t matched = 0;
  size_t checked = 0;
  for (size_t gi : clusters->duplicate_groups) {
    std::vector<relation::ValueId> items = clusters->groups[gi].values;
    if (items.size() > 4) continue;  // beyond the Apriori size cap
    std::sort(items.begin(), items.end());
    ++checked;
    for (const auto& s : *itemsets) {
      if (s.items == items &&
          s.support == rel->dictionary().Support(items[0])) {
        ++matched;
        break;
      }
    }
  }
  std::printf(
      "\nCV_D groups (<= 4 values): %zu; matching frequent itemsets with "
      "equal support: %zu\n",
      checked, matched);
  std::printf("Value clustering produced %zu groups in %.2f ms\n",
              clusters->groups.size(), Ms(t0, t1));
  std::printf("Apriori produced %zu itemsets in %.2f ms\n", itemsets->size(),
              Ms(t1, t2));
  std::printf(
      "\nShape check: every small CV_D group is a frequent itemset of the "
      "same support, while clustering summarizes the co-occurrence "
      "structure with far fewer artifacts than the full itemset lattice.\n");
  return matched == checked ? 0 : 1;
}
