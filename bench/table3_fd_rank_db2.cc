// Reproduces Section 8.1.4 + Table 3: FDEP on the DB2 sample relation,
// minimum cover, FD-RANK at psi = 0.5, and the RAD/RTR redundancy of the
// top-ranked dependencies.
//
// Expected shape (paper): FDEP finds on the order of hundreds of FDs
// whose minimum cover is a few dozen; the top-ranked dependencies are the
// department / employee / project "key" FDs with RAD in ~0.87-0.97 and
// RTR in ~0.80-0.92.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/attribute_grouping.h"
#include "core/fd_rank.h"
#include "core/measures.h"
#include "core/value_clustering.h"
#include "datagen/db2_sample.h"
#include "fd/fdep.h"
#include "fd/min_cover.h"

namespace {
using namespace limbo;  // NOLINT
}  // namespace

int main() {
  bench::Banner("Table 3 — FD-RANK on the DB2 sample (psi = 0.5)",
                "RAD / RTR of the top-ranked functional dependencies.");

  auto rel = datagen::Db2Sample::JoinedRelation();

  auto fds = fd::Fdep::Mine(*rel);
  if (!fds.ok()) {
    std::fprintf(stderr, "%s\n", fds.status().ToString().c_str());
    return 1;
  }
  // Single-RHS cover: FD-RANK's own Step 2 collapses same-antecedent FDs
  // of equal rank, as in the paper.
  const auto cover = fd::MinimumCover(*fds, /*merge_same_lhs=*/false);
  std::printf("\nFDEP: %zu minimal FDs (paper: 106); minimum cover: %zu "
              "single-RHS FDs (paper: 14 after merging)\n",
              fds->size(), cover.size());

  auto values = core::ClusterValues(*rel, {});
  auto grouping = core::GroupAttributes(*rel, *values);
  if (!grouping.ok()) return 1;

  auto ranked = core::RankFds(cover, *grouping);
  if (!ranked.ok()) return 1;

  std::printf("\nTop-ranked dependencies (anchored below psi*max only):\n");
  std::printf("  %-60s %-8s %-7s %-7s\n", "FD", "rank", "RAD", "RTR");
  std::vector<double> rad;
  std::vector<double> rtr;
  for (const auto& r : *ranked) {
    if (!r.anchored) continue;
    const auto attrs = r.fd.lhs.Union(r.fd.rhs).ToList();
    rad.push_back(core::Rad(*rel, attrs));
    rtr.push_back(core::Rtr(*rel, attrs));
    if (rad.size() <= 8) {
      std::printf("  %-60s %-8.4f %-7.3f %-7.3f\n",
                  r.fd.ToString(rel->schema()).c_str(), r.rank, rad.back(),
                  rtr.back());
    }
  }

  if (rad.size() >= 4) {
    const size_t top = std::min<size_t>(rad.size(), 8);
    const double best_rad = *std::max_element(rad.begin(), rad.begin() + top);
    const double best_rtr = *std::max_element(rtr.begin(), rtr.begin() + top);
    const double worst_rad = *std::min_element(rad.begin(), rad.begin() + top);
    const double worst_rtr = *std::min_element(rtr.begin(), rtr.begin() + top);
    std::printf("\nPaper's Table 3 range (its top-4) vs our anchored FDs:\n");
    bench::PaperVsMeasured("best RAD", 0.965, best_rad);
    bench::PaperVsMeasured("best RTR", 0.922, best_rtr);
    bench::PaperVsMeasured("worst RAD", 0.872, worst_rad);
    bench::PaperVsMeasured("worst RTR", 0.800, worst_rtr);
  }
  std::printf(
      "\nShape check: the top-ranked FDs carry high redundancy "
      "(RAD/RTR ~0.8-0.97 in the paper); decompositions on them remove "
      "the most duplication.\n");
  return 0;
}
