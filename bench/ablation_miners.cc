// Ablation: FDEP vs TANE crossover. FDEP pays O(n^2) tuple-pair
// comparisons; TANE pays per-lattice-node partition products. The paper
// uses FDEP on its 90-tuple relation and notes "other methods could also
// be used" — this driver shows where each miner wins on synthetic data
// with planted FDs, justifying the library's auto-selection rule
// (FDEP <= 2000 tuples < TANE).

#include <chrono>
#include <functional>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fd/fdep.h"
#include "fd/tane.h"
#include "testing/make_relation.h"
#include "util/random.h"

namespace {

using namespace limbo;  // NOLINT

/// n tuples over 8 attributes with a planted key -> attribute structure
/// (K determines D1..D3; pairs of free attributes).
relation::Relation Synthetic(size_t n, uint64_t seed) {
  util::Random rng(seed);
  std::vector<std::vector<std::string>> rows;
  for (size_t t = 0; t < n; ++t) {
    const size_t key = rng.Uniform(n / 2 + 1);
    rows.push_back({
        "k" + std::to_string(key),
        "d" + std::to_string(key % 17),
        "e" + std::to_string(key % 5),
        "f" + std::to_string((key * 7) % 11),
        "x" + std::to_string(rng.Uniform(4)),
        "y" + std::to_string(rng.Uniform(6)),
        "z" + std::to_string(rng.Uniform(3)),
        "w" + std::to_string(rng.Uniform(9)),
    });
  }
  return limbo::testing::MakeRelation(
      {"K", "D1", "D2", "D3", "X", "Y", "Z", "W"}, rows);
}

double TimeMs(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  bench::Banner("Ablation — FDEP vs TANE crossover",
                "Both miners return identical minimal FD sets; their "
                "costs scale differently with n.");

  std::printf("\n%-8s %-10s %-10s %-10s %-8s\n", "tuples", "FDEP ms",
              "TANE ms", "winner", "#FDs");
  for (size_t n : {100, 300, 1000, 3000, 10000}) {
    const auto rel = Synthetic(n, 7);
    std::vector<fd::FunctionalDependency> fdep_result;
    std::vector<fd::FunctionalDependency> tane_result;
    fd::FdepOptions fdep_options;
    fdep_options.max_tuples = 1u << 20;
    const double fdep_ms = TimeMs([&] {
      fdep_result = std::move(fd::Fdep::Mine(rel, fdep_options)).value();
    });
    const double tane_ms = TimeMs([&] {
      tane_result = std::move(fd::Tane::Mine(rel)).value();
    });
    if (fdep_result != tane_result) {
      std::fprintf(stderr, "MINERS DISAGREE at n=%zu\n", n);
      return 1;
    }
    std::printf("%-8zu %-10.1f %-10.1f %-10s %-8zu\n", n, fdep_ms, tane_ms,
                fdep_ms < tane_ms ? "FDEP" : "TANE", fdep_result.size());
  }
  std::printf(
      "\nShape check: FDEP wins on small relations; its O(n^2) pair scan "
      "loses to TANE's partition-based levelwise search as n grows — the "
      "crossover motivates the library's automatic miner selection.\n");
  return 0;
}
