// Microbenchmarks (google-benchmark) for the dependency substrate:
// closures, minimum cover, g3 error, FD verification and the approximate
// miner — the pieces FD-RANK sits on.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "datagen/db2_sample.h"
#include "fd/approx.h"
#include "fd/closure.h"
#include "fd/fdep.h"
#include "fd/min_cover.h"
#include "fd/mvd.h"
#include "fd/tane.h"
#include "testing/make_relation.h"
#include "util/random.h"

namespace {

using namespace limbo;  // NOLINT

std::vector<fd::FunctionalDependency> ChainFds(size_t m) {
  std::vector<fd::FunctionalDependency> fds;
  for (size_t a = 0; a + 1 < m; ++a) {
    fds.push_back({fd::AttributeSet::Single(static_cast<uint32_t>(a)),
                   fd::AttributeSet::Single(static_cast<uint32_t>(a + 1))});
  }
  return fds;
}

void BM_Closure(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const auto fds = ChainFds(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fd::Closure(fd::AttributeSet::Single(0), fds));
  }
}
BENCHMARK(BM_Closure)->Arg(8)->Arg(32)->Arg(64);

void BM_MinimumCoverDb2(benchmark::State& state) {
  auto rel = datagen::Db2Sample::JoinedRelation();
  auto fds = fd::Fdep::Mine(*rel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fd::MinimumCover(*fds));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fds->size()));
}
BENCHMARK(BM_MinimumCoverDb2);

relation::Relation RandomRelation(size_t n, size_t m, size_t domain,
                                  uint64_t seed) {
  util::Random rng(seed);
  std::vector<std::string> header;
  for (size_t a = 0; a < m; ++a) header.push_back("A" + std::to_string(a));
  std::vector<std::vector<std::string>> rows;
  for (size_t t = 0; t < n; ++t) {
    std::vector<std::string> row;
    for (size_t a = 0; a < m; ++a) {
      row.push_back("v" + std::to_string(rng.Uniform(domain)));
    }
    rows.push_back(std::move(row));
  }
  return limbo::testing::MakeRelation(header, rows);
}

void BM_HoldsVerification(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto rel = RandomRelation(n, 6, 12, 3);
  const fd::FunctionalDependency f{fd::AttributeSet::FromList({0, 1}),
                                   fd::AttributeSet::Single(2)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fd::Holds(rel, f));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_HoldsVerification)->Arg(1000)->Arg(100000);

void BM_G3Error(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto rel = RandomRelation(n, 6, 12, 5);
  const fd::FunctionalDependency f{fd::AttributeSet::Single(0),
                                   fd::AttributeSet::Single(1)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fd::G3Error(rel, f));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_G3Error)->Arg(1000)->Arg(100000);

void BM_ApproxMiner(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto rel = RandomRelation(n, 6, 8, 7);
  fd::ApproxMinerOptions options;
  options.epsilon = 0.05;
  options.max_lhs = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fd::MineApproximateFds(rel, options));
  }
}
BENCHMARK(BM_ApproxMiner)->Arg(1000)->Arg(10000);

void BM_MvdVerification(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto rel = RandomRelation(n, 5, 6, 9);
  const fd::MultiValuedDependency mvd{fd::AttributeSet::Single(0),
                                      fd::AttributeSet::Single(1)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fd::HoldsMvd(rel, mvd));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_MvdVerification)->Arg(1000)->Arg(50000);

}  // namespace

BENCHMARK_MAIN();
