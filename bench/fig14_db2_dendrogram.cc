// Reproduces Figure 14: the attribute-cluster dendrogram of the DB2
// sample relation, built from the duplicate value groups at phi_V = 0 /
// phi_A = 0, plus the stability observation for phi_V in {0.1, 0.2}.
//
// Expected shape (paper): attributes of the three source tables
// (EMPLOYEE, DEPARTMENT, PROJECT) group together; pairs such as
// (EmpNo, PhoneNo), (ProjNo, ProjName) and (DeptNo, MgrNo) merge at low
// information loss; the merge order is stable as phi_V grows.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/attribute_grouping.h"
#include "core/dendrogram.h"
#include "core/value_clustering.h"
#include "datagen/db2_sample.h"

namespace {

using namespace limbo;  // NOLINT

/// The merge at which two named attributes first co-reside.
double FirstCoResidenceLoss(const relation::Relation& rel,
                            const core::AttributeGroupingResult& grouping,
                            const char* a, const char* b) {
  const auto ia = rel.schema().Find(a);
  const auto ib = rel.schema().Find(b);
  if (!ia.ok() || !ib.ok()) return -1.0;
  const auto want =
      fd::AttributeSet::Single(*ia).Union(fd::AttributeSet::Single(*ib));
  for (const core::Merge& m : grouping.aib.merges()) {
    if (want.IsSubsetOf(grouping.cluster_members[m.merged])) {
      return m.delta_i;
    }
  }
  return -1.0;
}

}  // namespace

int main() {
  bench::Banner("Figure 14 — DB2 sample attribute dendrogram",
                "Attribute grouping over CV_D (phi_V = 0, phi_A = 0).");

  auto rel = datagen::Db2Sample::JoinedRelation();
  auto values = core::ClusterValues(*rel, {});
  auto grouping = core::GroupAttributes(*rel, *values);
  if (!grouping.ok()) {
    std::fprintf(stderr, "%s\n", grouping.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> leaf_labels;
  for (relation::AttributeId a : grouping->attributes) {
    leaf_labels.push_back(rel->schema().Name(a));
  }
  std::printf("\nDendrogram (cf. Figure 14):\n%s",
              core::RenderDendrogram(grouping->aib, leaf_labels).c_str());
  std::printf("\nMerge list (per-merge information loss):\n%s",
              grouping->DendrogramText(rel->schema()).c_str());
  std::printf("\nMaximum merge loss: %.4f (paper: 0.922)\n",
              grouping->max_merge_loss);

  std::printf("\nLow-loss pairs the paper highlights:\n");
  for (auto [a, b] : std::vector<std::pair<const char*, const char*>>{
           {"EmpNo", "PhoneNo"},
           {"ProjNo", "ProjName"},
           {"DeptNo", "MgrNo"},
           {"EmpNo", "FirstName"},
           {"LastName", "PhoneNo"}}) {
    const double loss = FirstCoResidenceLoss(*rel, *grouping, a, b);
    std::printf("  (%s, %s) first co-reside at loss %.4f  (max %.4f)\n", a,
                b, loss, grouping->max_merge_loss);
  }

  // Stability at phi_V in {0.1, 0.2}: the paper observes that A_D may
  // grow but the low-loss pairs keep merging early. We track the
  // highlighted pairs' first-co-residence losses across phi_V.
  std::printf(
      "\nStability under phi_V (first-co-residence loss of the pairs):\n");
  for (double phi_v : {0.1, 0.2}) {
    core::ValueClusteringOptions options;
    options.phi_v = phi_v;
    auto v = core::ClusterValues(*rel, options);
    auto g = core::GroupAttributes(*rel, *v);
    if (!g.ok()) continue;
    std::printf("  phi_V=%.1f: |A_D|=%zu;", phi_v, g->attributes.size());
    for (auto [a, b] : std::vector<std::pair<const char*, const char*>>{
             {"EmpNo", "PhoneNo"}, {"ProjNo", "ProjName"},
             {"DeptNo", "MgrNo"}}) {
      std::printf(" (%s,%s)=%.4f", a, b, FirstCoResidenceLoss(*rel, *g, a, b));
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check: attributes of the three source tables group "
      "together; the paper's highlighted pairs merge at near-zero loss "
      "and stay early merges as phi_V grows.\n");
  return 0;
}
