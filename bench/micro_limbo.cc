// Microbenchmarks (google-benchmark) for the core primitives and the
// LIMBO-vs-AIB scalability ablation the paper's Section 5.2 motivates:
// AIB is quadratic in the number of objects, LIMBO Phase 1 is near-linear
// with a bounded number of summaries.
//
// Special modes (skip the google-benchmark suite):
//  * `micro_limbo --thread-scaling [--tuples=N]` sweeps the LIMBO
//    worker-lane count over a DBLP-sized input, emitting one JSON object
//    (threads -> per-phase wall time) and cross-checking that every lane
//    count reproduces the serial merge sequence bit-for-bit.
//  * `micro_limbo --kernel [--tuples=N]` benchmarks the δI distance
//    kernel: per-pair dispatch vs the arena batch kernel across support
//    shapes, plus a single-threaded Phase-2 + Phase-3 comparison of the
//    two dispatch modes, with a built-in bit-identity check. Its output
//    is what BENCH_kernel.json records.
//  * `micro_limbo --report[=path] [--tuples=N] [--refit-tuples=M]` runs
//    the full LIMBO pipeline once over a DBLP-sized input and emits a
//    structured run report (same schema as `limbo-tool --report=...`:
//    phases, merge trajectory, trace spans, counters) to `path` or
//    stdout, plus a "refit" section measuring the incremental-refit arm
//    at M tuples (default: the pipeline's N). Its output is what
//    BENCH_report.json records.
//  * `micro_limbo --stream [--tuples=N]` writes a DBLP-sized CSV, then
//    runs the streamed (RowSource + RunLimboStreamed) and materialized
//    (ReadCsv + RunLimbo) pipelines over it — each in its own child
//    process via /proc/self/exe, so getrusage peak RSS isolates one arm —
//    and emits one JSON object with both arms' wall time, peak RSS, and
//    an FNV-1a checksum over the full LimboResult. Exit 0 iff the
//    checksums match (the bit-identity contract). Its output is what
//    BENCH_stream.json records. (`--stream-arm=` / `--stream-csv=` are
//    the internal child-process protocol.)
//  * `micro_limbo --serve [--tuples=N]` measures the serve::Engine query
//    path: a model bundle is frozen from a DBLP-sized LIMBO run, every
//    row is replayed as an NDJSON assign query at 1 and 4 workers, and
//    the output records queries/sec plus p50/p99 latency per worker
//    count. Exit 0 iff the responses are byte-identical across worker
//    counts AND every served label equals the batch Phase-3 assignment.
//    Its output is what BENCH_serve.json records.
//  * `micro_limbo --load [--tuples=N] [--connections=C]
//    [--serve-workers=W] [--load-seconds=S] [--p99-limit-us=X]
//    [--batch-max=B] [--batch-wait-us=U] [--cache-entries=E]` is the
//    closed-loop TCP load harness: two model bundles (k=10 and k=4 over
//    the same DBLP input) are frozen to disk and served by an in-process
//    serve::Server (reactor + worker-lane batching — the exact stack
//    behind limbo-serve), C client connections drive assign queries
//    routed across both models as fast as responses come back, and one
//    blue/green hot reload fires mid-run through the admin protocol.
//    --batch-max/--batch-wait-us shape the server's cross-connection
//    batching (1 disables it); --cache-entries enables the registry's
//    version-keyed response cache (0 = off), so cache hits must survive
//    the mid-run reload byte-identically. Every response is
//    byte-compared against the engine-computed expectation for its
//    model; the run fails on any mismatched or dropped response, a
//    failed reload, or (when --p99-limit-us is given) an aggregate p99
//    above the ceiling. The output line records realized batching
//    (batches, mean_batch) and cache_hits; these lines are what the
//    serve_load arms of BENCH_serve.json record.
//  * `micro_limbo --refit [--tuples=N]` measures the incremental refit
//    path against the full fit it replaces: a bundle is fit at N DBLP
//    tuples (with refit state), ~1% of the rows are replayed through
//    `model::RefitModel` on the no-drift patch path, and the refitted
//    child is hot-reloaded into a serve::Registry where every replayed
//    assign response is byte-compared against the parent's. Exit 0 iff
//    the batch stayed no-drift, the patch was at least 5x faster than
//    the full fit, and zero responses mismatched after the reload. The
//    same measurement is the "refit" section of BENCH_report.json.
//  * `micro_limbo --schemes [--tuples=N]` measures the approximate
//    acyclic-scheme miner (schemes::MineAcyclicSchemes over the streamed
//    entropy oracle) on the DB2 join sample and an N-tuple DBLP input:
//    wall time at 1 and 4 oracle lanes, scheme count, J-measures, and
//    oracle pass/prune statistics, one JSON line per dataset. Exit 0 iff
//    both lane counts mine the identical scheme list on every dataset
//    and DBLP yields at least one scheme. Its output is what
//    BENCH_schemes.json records.

#include <benchmark/benchmark.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/aib.h"
#include "core/dcf_tree.h"
#include "core/info.h"
#include "core/limbo.h"
#include "core/run_report.h"
#include "core/tuple_clustering.h"
#include "obs/counters.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "datagen/db2_sample.h"
#include "datagen/dblp.h"
#include "fd/fdep.h"
#include "fd/partition.h"
#include "fd/tane.h"
#include "model/fit.h"
#include "model/model_bundle.h"
#include "model/refit.h"
#include "relation/csv_io.h"
#include "relation/row_source.h"
#include "relation/source_stats.h"
#include "schemes/entropy_oracle.h"
#include "schemes/mine.h"
#include "serve/engine.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "util/json.h"
#include "util/parallel.h"
#include "util/random.h"

namespace {

using namespace limbo;  // NOLINT

/// Synthetic categorical objects: n objects over `groups` templates with
/// jitter, domain width ~3 values per slot.
std::vector<core::Dcf> SyntheticObjects(size_t n, size_t groups,
                                        uint64_t seed) {
  util::Random rng(seed);
  std::vector<core::Dcf> objects;
  objects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t base = static_cast<uint32_t>(i % groups) * 40;
    std::vector<uint32_t> support;
    for (uint32_t slot = 0; slot < 8; ++slot) {
      support.push_back(base + slot * 4 +
                        static_cast<uint32_t>(rng.Uniform(3)));
    }
    core::Dcf d;
    d.p = 1.0 / static_cast<double>(n);
    d.cond = core::SparseDistribution::UniformOver(support);
    objects.push_back(std::move(d));
  }
  return objects;
}

void BM_JsDivergence(benchmark::State& state) {
  const size_t support = static_cast<size_t>(state.range(0));
  std::vector<uint32_t> a_ids;
  std::vector<uint32_t> b_ids;
  for (uint32_t i = 0; i < support; ++i) {
    a_ids.push_back(i * 2);      // evens
    b_ids.push_back(i * 2 + (i % 3 == 0 ? 0 : 1));  // overlap ~1/3
  }
  const auto p = core::SparseDistribution::UniformOver(a_ids);
  const auto q = core::SparseDistribution::UniformOver(b_ids);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::JsDivergence(0.5, p, 0.5, q));
  }
  state.SetItemsProcessed(state.iterations() * support);
}
BENCHMARK(BM_JsDivergence)->Arg(16)->Arg(256)->Arg(4096);

void BM_JsDivergenceAsymmetric(benchmark::State& state) {
  // Small object vs large cluster summary: the binary-search fast path.
  const size_t big = static_cast<size_t>(state.range(0));
  std::vector<uint32_t> big_ids(big);
  for (uint32_t i = 0; i < big; ++i) big_ids[i] = i;
  const auto q = core::SparseDistribution::UniformOver(big_ids);
  const auto p = core::SparseDistribution::UniformOver(
      std::vector<uint32_t>{1, 5, 9, 13, 17, 21, 25, 29});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::JsDivergence(0.01, p, 0.99, q));
  }
}
BENCHMARK(BM_JsDivergenceAsymmetric)->Arg(1024)->Arg(65536);

void BM_AibFull(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto objects = SyntheticObjects(n, 8, 42);
  for (auto _ : state) {
    auto result = core::AgglomerativeIb(objects);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_AibFull)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Complexity();

void BM_LimboPhase1(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto objects = SyntheticObjects(n, 8, 42);
  core::WeightedRows rows;
  for (const auto& o : objects) {
    rows.weights.push_back(o.p);
    rows.rows.push_back(o.cond);
  }
  const double info = core::MutualInformation(rows);
  core::LimboOptions options;
  options.phi = 0.5;
  const double threshold = 0.5 * info / static_cast<double>(n);
  for (auto _ : state) {
    auto leaves = core::LimboPhase1(objects, options, threshold);
    benchmark::DoNotOptimize(leaves);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LimboPhase1)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Arg(64000)
    ->Complexity();

void BM_LimboFull(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto objects = SyntheticObjects(n, 6, 7);
  core::LimboOptions options;
  options.phi = 0.5;
  options.k = 6;
  for (auto _ : state) {
    auto result = core::RunLimbo(objects, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LimboFull)->Arg(5000)->Arg(20000);

void BM_PartitionProduct(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  util::Random rng(3);
  std::vector<std::string> header = {"A", "B"};
  relation::RelationBuilder builder(
      std::move(relation::Schema::Create(header)).value());
  for (size_t i = 0; i < n; ++i) {
    (void)builder.AddRow({"a" + std::to_string(rng.Uniform(50)),
                          "b" + std::to_string(rng.Uniform(50))});
  }
  const relation::Relation rel = std::move(builder).Build();
  const auto pa = fd::StrippedPartition::ForAttribute(rel, 0);
  const auto pb = fd::StrippedPartition::ForAttribute(rel, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fd::StrippedPartition::Product(pa, pb, n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PartitionProduct)->Arg(10000)->Arg(100000);

void BM_FdepDb2(benchmark::State& state) {
  auto rel = datagen::Db2Sample::JoinedRelation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fd::Fdep::Mine(*rel));
  }
}
BENCHMARK(BM_FdepDb2);

void BM_TaneDb2(benchmark::State& state) {
  auto rel = datagen::Db2Sample::JoinedRelation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fd::Tane::Mine(*rel));
  }
}
BENCHMARK(BM_TaneDb2);

void BM_TupleObjectsDb2(benchmark::State& state) {
  auto rel = datagen::Db2Sample::JoinedRelation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BuildTupleObjects(*rel));
  }
}
BENCHMARK(BM_TupleObjectsDb2);

/// Thread-scaling sweep: one RunLimbo per lane count over the DBLP
/// relation (the paper's large input), asserting bit-identical results.
int RunThreadScaling(size_t tuples) {
  datagen::DblpOptions dblp_options;
  dblp_options.target_tuples = tuples;
  const relation::Relation rel = datagen::GenerateDblp(dblp_options);
  const std::vector<core::Dcf> objects = core::BuildTupleObjects(rel);

  core::LimboOptions options;
  options.phi = 0.5;
  options.k = 10;

  const size_t thread_counts[] = {1, 2, 4, 8};
  std::vector<bench::ThreadScalingRow> rows;
  bool deterministic = true;
  std::vector<core::Merge> baseline_merges;
  std::vector<uint32_t> baseline_assignments;
  size_t leaves = 0;
  for (size_t threads : thread_counts) {
    options.threads = threads;
    auto result = core::RunLimbo(objects, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    leaves = result->leaves.size();
    rows.push_back({threads, result->timings});
    if (threads == 1) {
      baseline_merges = result->aib.merges();
      baseline_assignments = result->assignments;
    } else {
      const auto& merges = result->aib.merges();
      bool same = merges.size() == baseline_merges.size() &&
                  result->assignments == baseline_assignments;
      for (size_t i = 0; same && i < merges.size(); ++i) {
        same = merges[i].left == baseline_merges[i].left &&
               merges[i].right == baseline_merges[i].right &&
               merges[i].delta_i == baseline_merges[i].delta_i;
      }
      deterministic = deterministic && same;
    }
  }
  bench::PrintThreadScalingJson("limbo_thread_scaling", objects.size(),
                                leaves, deterministic, rows);
  return deterministic ? 0 : 1;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Per-pair reference δI: Eq. 3 through the generic JsDivergence, the
/// pre-kernel formulation every result is checked against.
double ReferencePairLoss(const core::Dcf& a, const core::Dcf& b) {
  const double total = a.p + b.p;
  if (total <= 0.0) return 0.0;
  return total * core::JsDivergence(a.p / total, a.cond, b.p / total, b.cond);
}

/// Measures one micro case: `n_candidates` candidates scored against one
/// object, per-pair formulation vs batch kernel. Repeats until each arm
/// has run for >= 50ms and reports ns per evaluation.
bench::KernelCaseRow MeasureKernelCase(const char* name, size_t so, size_t sc,
                                       uint64_t seed) {
  constexpr size_t kCandidates = 64;
  util::Random rng(seed);
  const uint32_t universe = static_cast<uint32_t>(2 * (so + sc));
  auto random_support = [&](size_t support) {
    std::vector<uint32_t> ids;
    ids.reserve(support);
    while (ids.size() < support) {
      const uint32_t id = static_cast<uint32_t>(rng.Uniform(universe));
      bool dup = false;
      for (uint32_t seen : ids) dup |= (seen == id);
      if (!dup) ids.push_back(id);
    }
    return core::SparseDistribution::UniformOver(ids);
  };
  core::Dcf object;
  object.p = 0.3;
  object.cond = random_support(so);
  std::vector<core::Dcf> candidates(kCandidates);
  core::DistributionArena arena;
  std::vector<double> cand_p(kCandidates);
  for (size_t i = 0; i < kCandidates; ++i) {
    candidates[i].p = 0.7 / static_cast<double>(kCandidates);
    candidates[i].cond = random_support(sc);
    cand_p[i] = candidates[i].p;
    arena.Append(candidates[i].cond);
  }
  // The batch arm reads both sides from the arena, exactly as the AIB
  // scans do (cached logs on object and candidates alike).
  const size_t object_row = arena.Append(object.cond);

  bench::KernelCaseRow row;
  row.name = name;
  row.object_support = so;
  row.candidate_support = sc;
  double sink = 0.0;

  uint64_t evals = 0;
  auto start = std::chrono::steady_clock::now();
  while (Seconds(start) < 0.05) {
    for (const core::Dcf& c : candidates) sink += ReferencePairLoss(object, c);
    evals += kCandidates;
  }
  row.per_pair_ns_per_eval = Seconds(start) * 1e9 / static_cast<double>(evals);

  core::LossKernel kernel;
  evals = 0;
  start = std::chrono::steady_clock::now();
  while (Seconds(start) < 0.05) {
    kernel.SetObject(object.p, arena.Row(object_row));
    for (size_t i = 0; i < kCandidates; ++i) {
      sink += kernel.Loss(cand_p[i], arena.Row(i));
    }
    evals += kCandidates;
  }
  row.batch_ns_per_eval = Seconds(start) * 1e9 / static_cast<double>(evals);
  benchmark::DoNotOptimize(sink);

  kernel.SetObject(object.p, arena.Row(object_row));
  for (size_t i = 0; i < kCandidates; ++i) {
    const double diff = std::abs(kernel.Loss(cand_p[i], arena.Row(i)) -
                                 ReferencePairLoss(object, candidates[i]));
    row.max_abs_diff = std::max(row.max_abs_diff, diff);
  }
  return row;
}

/// Kernel benchmark mode: micro sweep over support shapes, then a
/// single-threaded Phase-2 + Phase-3 comparison of per-pair vs batch
/// dispatch on the DBLP input, with a bit-identity check.
int RunKernelBench(size_t tuples) {
  std::vector<bench::KernelCaseRow> micro;
  micro.push_back(MeasureKernelCase("equal_8", 8, 8, 1));
  micro.push_back(MeasureKernelCase("equal_64", 64, 64, 2));
  micro.push_back(MeasureKernelCase("equal_512", 512, 512, 3));
  micro.push_back(MeasureKernelCase("small_obj_vs_4096", 8, 4096, 4));
  micro.push_back(MeasureKernelCase("large_obj_vs_8", 4096, 8, 5));

  datagen::DblpOptions dblp_options;
  dblp_options.target_tuples = tuples;
  const relation::Relation rel = datagen::GenerateDblp(dblp_options);
  const std::vector<core::Dcf> objects = core::BuildTupleObjects(rel);
  core::WeightedRows rows;
  for (const core::Dcf& o : objects) {
    rows.weights.push_back(o.p);
    rows.rows.push_back(o.cond);
  }
  const double info = core::MutualInformation(rows);
  core::LimboOptions limbo_options;
  limbo_options.phi = 0.5;
  const double threshold =
      0.5 * info / static_cast<double>(objects.size());
  const std::vector<core::Dcf> leaves =
      core::LimboPhase1(objects, limbo_options, threshold);

  bench::KernelEndToEndRow e2e;
  e2e.tuples = objects.size();
  e2e.leaves = leaves.size();
  e2e.bit_identical = true;

  core::AibOptions aib_options;
  aib_options.threads = 1;
  constexpr int kReps = 3;
  util::Result<core::AibResult> batch_aib =
      util::Status::InvalidArgument("unset");
  util::Result<core::AibResult> pair_aib =
      util::Status::InvalidArgument("unset");
  e2e.phase2_batch_seconds = 1e30;
  e2e.phase2_per_pair_seconds = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    aib_options.kernel = core::AibOptions::DistanceKernel::kBatch;
    auto start = std::chrono::steady_clock::now();
    batch_aib = core::AgglomerativeIb(leaves, aib_options);
    e2e.phase2_batch_seconds =
        std::min(e2e.phase2_batch_seconds, Seconds(start));
    aib_options.kernel = core::AibOptions::DistanceKernel::kPerPair;
    start = std::chrono::steady_clock::now();
    pair_aib = core::AgglomerativeIb(leaves, aib_options);
    e2e.phase2_per_pair_seconds =
        std::min(e2e.phase2_per_pair_seconds, Seconds(start));
  }
  if (!batch_aib.ok() || !pair_aib.ok()) {
    std::fprintf(stderr, "AIB failed\n");
    return 1;
  }
  const auto& bm = batch_aib->merges();
  const auto& pm = pair_aib->merges();
  bool same = bm.size() == pm.size();
  for (size_t i = 0; same && i < bm.size(); ++i) {
    same = bm[i].left == pm[i].left && bm[i].right == pm[i].right &&
           bm[i].delta_i == pm[i].delta_i &&
           bm[i].cumulative_loss == pm[i].cumulative_loss;
  }
  e2e.bit_identical = e2e.bit_identical && same;

  const size_t k = std::min<size_t>(10, leaves.size());
  auto reps = core::ClusterDcfsAtK(leaves, *batch_aib, k);
  if (!reps.ok()) {
    std::fprintf(stderr, "%s\n", reps.status().ToString().c_str());
    return 1;
  }
  std::vector<double> batch_loss;
  std::vector<double> pair_loss;
  util::Result<std::vector<uint32_t>> batch_labels =
      util::Status::InvalidArgument("unset");
  util::Result<std::vector<uint32_t>> pair_labels =
      util::Status::InvalidArgument("unset");
  e2e.phase3_batch_seconds = 1e30;
  e2e.phase3_per_pair_seconds = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    batch_labels = core::LimboPhase3(objects, *reps, &batch_loss, 1,
                                     /*batch_kernel=*/true);
    e2e.phase3_batch_seconds =
        std::min(e2e.phase3_batch_seconds, Seconds(start));
    start = std::chrono::steady_clock::now();
    pair_labels = core::LimboPhase3(objects, *reps, &pair_loss, 1,
                                    /*batch_kernel=*/false);
    e2e.phase3_per_pair_seconds =
        std::min(e2e.phase3_per_pair_seconds, Seconds(start));
  }
  if (!batch_labels.ok() || !pair_labels.ok()) {
    std::fprintf(stderr, "Phase 3 failed\n");
    return 1;
  }
  e2e.bit_identical = e2e.bit_identical && *batch_labels == *pair_labels &&
                      batch_loss == pair_loss;

  bench::PrintKernelJson(micro, e2e);
  return e2e.bit_identical ? 0 : 1;
}

/// One measured refit arm: full-fit wall time vs the no-drift patch
/// path over the same DBLP input, plus the serve-side hot-reload gate
/// (parent served, refitted child swapped in, responses byte-compared).
struct RefitArmRow {
  size_t tuples = 0;
  size_t extra_rows = 0;
  double fit_seconds = 0.0;
  double refit_seconds = 0.0;
  double speedup = 0.0;
  double drift_score = 0.0;
  const char* drift_class = "?";
  bool reload_ok = false;
  size_t replayed = 0;
  uint64_t mismatched = 0;
};

util::Result<RefitArmRow> MeasureRefitArm(size_t tuples);

/// Run-report mode: one full LIMBO pipeline over DBLP, reported with the
/// exact schema `limbo-tool --report=...` writes, so tooling that parses
/// one parses the other. The report also carries a "refit" section —
/// the incremental-refit arm at `refit_tuples` — measured before the
/// pipeline so its spans and counters don't leak into the report's own.
int RunReportMode(size_t tuples, const std::string& path,
                  size_t refit_tuples) {
  auto refit_arm = MeasureRefitArm(refit_tuples);
  if (!refit_arm.ok()) {
    std::fprintf(stderr, "%s\n", refit_arm.status().ToString().c_str());
    return 1;
  }
  obs::ResetTrace();
  obs::ResetCounters();
  datagen::DblpOptions dblp_options;
  dblp_options.target_tuples = tuples;
  const relation::Relation rel = datagen::GenerateDblp(dblp_options);
  const std::vector<core::Dcf> objects = core::BuildTupleObjects(rel);

  core::LimboOptions options;
  options.phi = 0.5;
  options.k = 10;
  auto result = core::RunLimbo(objects, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::vector<obs::ReportSection> sections;
  obs::ReportSection run("run");
  run.AddField("command", "micro_limbo --report");
  run.AddField("input", "dblp");
  run.AddField("tuples", static_cast<uint64_t>(objects.size()));
  run.AddField("leaves", static_cast<uint64_t>(result->leaves.size()));
  run.AddField("k", static_cast<uint64_t>(options.k));
  sections.push_back(std::move(run));
  sections.push_back(core::TimingsSection(result->timings));
  sections.push_back(core::TrajectorySection(result->aib.merges()));
  obs::ReportSection refit("refit");
  refit.AddField("tuples", static_cast<uint64_t>(refit_arm->tuples));
  refit.AddField("appended_rows",
                 static_cast<uint64_t>(refit_arm->extra_rows));
  refit.AddField("full_fit_seconds", refit_arm->fit_seconds);
  refit.AddField("refit_seconds", refit_arm->refit_seconds);
  refit.AddField("speedup", refit_arm->speedup);
  refit.AddField("drift_score", refit_arm->drift_score);
  refit.AddField("drift_class", refit_arm->drift_class);
  refit.AddField("reload_bit_identical",
                 refit_arm->reload_ok && refit_arm->mismatched == 0);
  sections.push_back(std::move(refit));
  const obs::RunReport report = core::AssembleRunReport(
      "micro_limbo limbo-pipeline", std::move(sections));
  const std::string body = report.ToJson();
  if (path.empty()) {
    std::printf("%s\n", body.c_str());
    return 0;
  }
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  file << body;
  std::fprintf(stderr, "wrote run report %s (%zu bytes)\n", path.c_str(),
               body.size());
  return 0;
}

/// Child process of the `--stream` benchmark: runs one pipeline arm over
/// the CSV the parent wrote and prints a single JSON line with wall time,
/// peak RSS (its own, so the arms don't contaminate each other), and the
/// result checksum.
int RunStreamArm(const std::string& arm, const std::string& csv_path) {
  core::LimboOptions options;
  // φ = 1.0 keeps the Phase-1 summary count bounded the way the paper
  // runs large inputs; with thousands of leaves the quadratic Phase-2
  // matrix would dominate both arms' RSS and mask the ingest difference
  // this benchmark exists to measure.
  options.phi = 1.0;
  options.k = 10;
  const auto start = std::chrono::steady_clock::now();
  util::Result<core::LimboResult> result =
      util::Status::InvalidArgument("unset");
  if (arm == "streamed") {
    auto source = relation::CsvFileSource::Open(csv_path);
    if (!source.ok()) {
      std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
      return 1;
    }
    auto stats = relation::CollectSourceStats(*source);
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }
    core::TupleObjectStream objects(*source, *stats);
    result = core::RunLimboStreamed(objects, options);
  } else if (arm == "materialized") {
    auto rel = relation::ReadCsv(csv_path);
    if (!rel.ok()) {
      std::fprintf(stderr, "%s\n", rel.status().ToString().c_str());
      return 1;
    }
    const std::vector<core::Dcf> objects = core::BuildTupleObjects(*rel);
    result = core::RunLimbo(objects, options);
  } else {
    std::fprintf(stderr, "unknown --stream-arm=%s\n", arm.c_str());
    return 1;
  }
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  bench::StreamArmRow row;
  row.arm = arm;
  row.seconds = Seconds(start);
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  row.peak_rss_kb = static_cast<unsigned long long>(usage.ru_maxrss);
  row.leaves = result->leaves.size();
  row.checksum = bench::HashLimboResult(*result);
  bench::PrintStreamArmJson(row);
  return 0;
}

/// Parent of the `--stream` benchmark: writes the CSV, re-execs itself
/// once per arm (peak RSS is a process-lifetime maximum, so the arms must
/// not share an address space), and emits the combined record.
int RunStreamBench(size_t tuples) {
  datagen::DblpOptions dblp_options;
  dblp_options.target_tuples = tuples;
  const relation::Relation rel = datagen::GenerateDblp(dblp_options);
  const std::string csv =
      "/tmp/micro_limbo_stream_" + std::to_string(getpid()) + ".csv";
  util::Status s = relation::WriteCsv(rel, csv);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  // Resolve our own binary before popen: the child shell's
  // /proc/self/exe would be the shell, not this benchmark.
  char exe[4096];
  const ssize_t exe_len = readlink("/proc/self/exe", exe, sizeof exe - 1);
  if (exe_len <= 0) {
    std::fprintf(stderr, "cannot resolve /proc/self/exe\n");
    unlink(csv.c_str());
    return 1;
  }
  exe[exe_len] = '\0';
  std::vector<bench::StreamArmRow> arms;
  for (const char* arm : {"streamed", "materialized"}) {
    const std::string cmd = std::string(exe) + " --stream-arm=" + arm +
                            " --stream-csv=" + csv;
    FILE* pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr) {
      std::fprintf(stderr, "cannot spawn %s\n", cmd.c_str());
      unlink(csv.c_str());
      return 1;
    }
    char line[512];
    const bool got = std::fgets(line, sizeof line, pipe) != nullptr;
    const int rc = pclose(pipe);
    bench::StreamArmRow row;
    char name[32] = {0};
    unsigned long long rss = 0;
    unsigned long long leaves = 0;
    unsigned long long checksum = 0;
    if (!got || rc != 0 ||
        std::sscanf(line,
                    "{\"arm\": \"%31[^\"]\", \"seconds\": %lf, "
                    "\"peak_rss_kb\": %llu, \"leaves\": %llu, "
                    "\"checksum\": \"%llx\"}",
                    name, &row.seconds, &rss, &leaves, &checksum) != 5) {
      std::fprintf(stderr, "stream arm %s failed (rc=%d)\n", arm, rc);
      unlink(csv.c_str());
      return 1;
    }
    row.arm = name;
    row.peak_rss_kb = rss;
    row.leaves = static_cast<size_t>(leaves);
    row.checksum = checksum;
    arms.push_back(std::move(row));
  }
  unlink(csv.c_str());
  const bool equivalent = arms.size() == 2 &&
                          arms[0].checksum == arms[1].checksum &&
                          arms[0].leaves == arms[1].leaves;
  bench::PrintStreamJson(tuples, /*k=*/10, equivalent, arms);
  return equivalent ? 0 : 1;
}

/// One worker-count arm of the serve benchmark.
struct ServeArmRow {
  size_t workers = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Freezes the tuple-clustering artifacts of one LIMBO run at `k` into
/// a ModelBundle. The value-group / FD sections stay empty — assign
/// touches only the representatives and the dictionary, and fitting
/// them would dominate setup time.
util::Result<model::ModelBundle> FreezeTupleBundle(
    const relation::Relation& rel, const std::vector<core::Dcf>& objects,
    size_t k) {
  core::LimboOptions options;
  options.phi = 0.5;
  options.k = k;
  LIMBO_ASSIGN_OR_RETURN(core::LimboResult run,
                         core::RunLimbo(objects, options));
  model::ModelBundle bundle;
  bundle.num_rows = rel.NumTuples();
  bundle.phi_t = options.phi;
  bundle.mutual_information = run.mutual_information;
  bundle.threshold = run.threshold;
  bundle.schema = rel.schema();
  bundle.dictionary = rel.dictionary();
  bundle.representatives = std::move(run.representatives);
  bundle.assignments = std::move(run.assignments);
  bundle.assignment_loss = std::move(run.assignment_loss);
  return bundle;
}

/// The assign query for row `t` of `rel`, optionally routed to `model`.
std::string AssignQuery(const relation::Relation& rel, relation::TupleId t,
                        const std::string& model) {
  std::string q = "{\"op\":\"assign\",";
  if (!model.empty()) {
    q += "\"model\":";
    util::AppendJsonString(model, &q);
    q.push_back(',');
  }
  q += "\"row\":[";
  for (relation::AttributeId a = 0; a < rel.NumAttributes(); ++a) {
    if (a > 0) q.push_back(',');
    util::AppendJsonString(rel.TextAt(t, a), &q);
  }
  q += "]}";
  return q;
}

/// Serve-path benchmark: freeze one LIMBO run into a ModelBundle,
/// replay every row as an assign query, and measure throughput +
/// latency per worker count.
int RunServeBench(size_t tuples) {
  datagen::DblpOptions dblp_options;
  dblp_options.target_tuples = tuples;
  const relation::Relation rel = datagen::GenerateDblp(dblp_options);
  const std::vector<core::Dcf> objects = core::BuildTupleObjects(rel);
  auto bundle = FreezeTupleBundle(rel, objects, 10);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }
  const std::vector<uint32_t> batch_assignments = bundle->assignments;
  const size_t clusters = bundle->representatives.size();
  auto engine = serve::Engine::FromBundle(std::move(*bundle), {});
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> queries;
  queries.reserve(rel.NumTuples());
  for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
    queries.push_back(AssignQuery(rel, t, ""));
  }

  std::vector<ServeArmRow> arms;
  std::vector<std::string> baseline;
  bool bit_identical = true;
  for (const size_t workers : {size_t{1}, size_t{4}}) {
    util::ThreadPool pool(workers);
    std::vector<core::LossKernel> kernels(pool.threads());
    std::vector<std::string> responses(queries.size());
    std::vector<std::vector<double>> lane_latencies(pool.threads());
    auto replay = [&](bool timed) {
      pool.ParallelFor(
          0, queries.size(), 64, [&](size_t begin, size_t end, size_t lane) {
            for (size_t i = begin; i < end; ++i) {
              const auto start = std::chrono::steady_clock::now();
              responses[i] = engine->HandleLine(queries[i], &kernels[lane]);
              if (timed) {
                lane_latencies[lane].push_back(
                    std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count());
              }
            }
          });
    };
    replay(/*timed=*/false);  // warm up caches and the JSON parser path
    const auto start = std::chrono::steady_clock::now();
    replay(/*timed=*/true);
    const double elapsed = Seconds(start);

    std::vector<double> latencies;
    for (const auto& lane : lane_latencies) {
      latencies.insert(latencies.end(), lane.begin(), lane.end());
    }
    std::sort(latencies.begin(), latencies.end());
    ServeArmRow row;
    row.workers = workers;
    row.qps = static_cast<double>(queries.size()) / elapsed;
    row.p50_us = latencies[latencies.size() / 2];
    row.p99_us = latencies[latencies.size() * 99 / 100];
    arms.push_back(row);

    if (baseline.empty()) {
      baseline = responses;
      // The 1-worker pass also gates label fidelity: every served
      // cluster id must equal the batch Phase-3 assignment.
      for (size_t t = 0; t < responses.size(); ++t) {
        auto parsed = util::ParseJson(responses[t]);
        if (!parsed.ok() || parsed->Find("cluster") == nullptr ||
            parsed->Find("cluster")->integer != batch_assignments[t]) {
          bit_identical = false;
          break;
        }
      }
    } else {
      bit_identical = bit_identical && responses == baseline;
    }
  }

  std::printf("{\"benchmark\": \"serve\", \"tuples\": %zu, "
              "\"clusters\": %zu, \"bit_identical\": %s, \"arms\": [",
              rel.NumTuples(), clusters, bit_identical ? "true" : "false");
  for (size_t i = 0; i < arms.size(); ++i) {
    std::printf("%s{\"workers\": %zu, \"qps\": %.1f, \"p50_us\": %.2f, "
                "\"p99_us\": %.2f}",
                i > 0 ? ", " : "", arms[i].workers, arms[i].qps,
                arms[i].p50_us, arms[i].p99_us);
  }
  std::printf("]}\n");
  return bit_identical ? 0 : 1;
}

/// A blocking loopback NDJSON client for the load harness: one
/// connection, send a line, read a line.
class LoadClient {
 public:
  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    return true;
  }

  ~LoadClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Send(const std::string& line) {
    std::string framed = line;
    framed.push_back('\n');
    size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t w = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      if (w < 0 && errno == EINTR) continue;
      if (w <= 0) return false;
      sent += static_cast<size_t>(w);
    }
    return true;
  }

  /// Reads one '\n'-terminated response (without the newline). False on
  /// close or error.
  bool ReadLine(std::string* line) {
    line->clear();
    for (;;) {
      const size_t newline = buffered_.find('\n');
      if (newline != std::string::npos) {
        line->assign(buffered_, 0, newline);
        buffered_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      ssize_t n;
      do {
        n = ::recv(fd_, chunk, sizeof(chunk), 0);
      } while (n < 0 && errno == EINTR);
      if (n <= 0) return false;
      buffered_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffered_;
};

/// Closed-loop TCP load harness over the full serve::Server stack: a
/// 2-model registry, C concurrent client connections alternating models,
/// one blue/green hot reload mid-run, and a byte-exact check of every
/// response against the per-model expectation.
int RunLoadBench(size_t tuples, size_t connections, size_t workers,
                 double seconds, double p99_limit_us, size_t batch_max,
                 int batch_wait_us, size_t cache_entries) {
  datagen::DblpOptions dblp_options;
  dblp_options.target_tuples = tuples;
  const relation::Relation rel = datagen::GenerateDblp(dblp_options);
  const std::vector<core::Dcf> objects = core::BuildTupleObjects(rel);

  // Two genuinely different models over the same schema (k=10 vs k=4),
  // frozen to disk so the registry's reload path exercises a real load.
  const std::string stem =
      "/tmp/micro_limbo_load_" + std::to_string(getpid());
  const char* names[2] = {"wide", "narrow"};
  const size_t ks[2] = {10, 4};
  std::string paths[2];
  std::vector<std::string> expected[2];  // per-model response per row
  serve::Registry registry({}, cache_entries);
  for (int m = 0; m < 2; ++m) {
    auto bundle = FreezeTupleBundle(rel, objects, ks[m]);
    if (!bundle.ok()) {
      std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
      return 1;
    }
    paths[m] = stem + "_" + names[m] + ".limbo";
    util::Status saved = model::Save(*bundle, paths[m]);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
    auto engine = serve::Engine::FromBundle(std::move(*bundle), {});
    if (!engine.ok()) {
      std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
      return 1;
    }
    expected[m].reserve(rel.NumTuples());
    for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
      expected[m].push_back(
          engine->HandleLine(AssignQuery(rel, t, names[m])));
    }
    util::Status added = registry.AddModel(names[m], paths[m]);
    if (!added.ok()) {
      std::fprintf(stderr, "%s\n", added.ToString().c_str());
      return 1;
    }
  }

  serve::ServerOptions server_options;
  server_options.port = 0;
  server_options.workers = workers;
  server_options.poll_ms = 20;
  server_options.batch_max = batch_max;
  server_options.batch_wait_us = batch_wait_us;
  auto server = serve::Server::Start(&registry, server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  const int port = (*server)->port();
  std::atomic<int> stop_flag{0};
  std::thread acceptor([&server, &stop_flag] { (*server)->Run(&stop_flag); });

  // C closed-loop clients, model fixed per connection (even = wide, odd
  // = narrow), each verifying every response byte-for-byte.
  std::atomic<uint64_t> total_requests{0};
  std::atomic<uint64_t> mismatched{0};
  std::atomic<uint64_t> transport_errors{0};
  std::vector<std::vector<double>> latencies(connections);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  const auto run_start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(connections);
  for (size_t c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      const int m = static_cast<int>(c % 2);
      const std::vector<std::string>& want = expected[m];
      std::vector<std::string> queries;
      queries.reserve(rel.NumTuples());
      for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
        queries.push_back(AssignQuery(rel, t, names[m]));
      }
      LoadClient client;
      if (!client.Connect(port)) {
        transport_errors.fetch_add(1);
        return;
      }
      std::string response;
      size_t t = c;  // stagger the row cursor across connections
      while (std::chrono::steady_clock::now() < deadline) {
        const size_t row = t++ % queries.size();
        const auto start = std::chrono::steady_clock::now();
        if (!client.Send(queries[row]) || !client.ReadLine(&response)) {
          transport_errors.fetch_add(1);
          return;
        }
        latencies[c].push_back(std::chrono::duration<double, std::micro>(
                                   std::chrono::steady_clock::now() - start)
                                   .count());
        total_requests.fetch_add(1);
        if (response != want[row]) mismatched.fetch_add(1);
      }
    });
  }

  // One blue/green hot reload of both models mid-run, through the admin
  // protocol like any other client.
  bool reload_ok = false;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds / 2));
  {
    LoadClient admin;
    std::string response;
    if (admin.Connect(port) && admin.Send("{\"op\":\"reload\"}") &&
        admin.ReadLine(&response)) {
      reload_ok = response.find("\"ok\":true") != std::string::npos &&
                  response.find("\"version\":2") != std::string::npos;
      if (!reload_ok) {
        std::fprintf(stderr, "reload failed: %s\n", response.c_str());
      }
    } else {
      std::fprintf(stderr, "reload connection failed\n");
    }
  }

  for (std::thread& client : clients) client.join();
  const double elapsed = Seconds(run_start);
  stop_flag.store(1);
  acceptor.join();
  const uint64_t sheds = (*server)->sheds();
  const uint64_t batches = (*server)->batches();
  const uint64_t batched_requests = (*server)->batched_requests();
  const uint64_t cache_hits = registry.CacheHits();
  for (const std::string& path : paths) unlink(path.c_str());

  std::vector<double> all;
  for (const std::vector<double>& lane : latencies) {
    all.insert(all.end(), lane.begin(), lane.end());
  }
  std::sort(all.begin(), all.end());
  const double p50 = all.empty() ? 0.0 : all[all.size() / 2];
  const double p99 = all.empty() ? 0.0 : all[all.size() * 99 / 100];
  const uint64_t requests = total_requests.load();
  const bool bit_identical = mismatched.load() == 0 &&
                             transport_errors.load() == 0 && requests > 0;
  const bool p99_ok = p99_limit_us <= 0.0 || p99 <= p99_limit_us;
  if (!p99_ok) {
    std::fprintf(stderr, "p99 %.2fus exceeds --p99-limit-us=%.2f\n", p99,
                 p99_limit_us);
  }

  std::printf(
      "{\"benchmark\": \"serve_load\", \"tuples\": %zu, \"models\": 2, "
      "\"connections\": %zu, \"workers\": %zu, \"batch_max\": %zu, "
      "\"batch_wait_us\": %d, \"cache_entries\": %zu, \"seconds\": %.2f, "
      "\"requests\": %llu, \"qps\": %.1f, \"p50_us\": %.2f, "
      "\"p99_us\": %.2f, \"batches\": %llu, \"mean_batch\": %.2f, "
      "\"cache_hits\": %llu, \"reload_mid_run\": %s, \"sheds\": %llu, "
      "\"mismatched\": %llu, \"bit_identical\": %s}\n",
      rel.NumTuples(), connections, workers, batch_max, batch_wait_us,
      cache_entries, elapsed, static_cast<unsigned long long>(requests),
      static_cast<double>(requests) / elapsed, p50, p99,
      static_cast<unsigned long long>(batches),
      batches == 0 ? 0.0
                   : static_cast<double>(batched_requests) /
                         static_cast<double>(batches),
      static_cast<unsigned long long>(cache_hits),
      reload_ok ? "true" : "false",
      static_cast<unsigned long long>(sheds),
      static_cast<unsigned long long>(mismatched.load()),
      bit_identical ? "true" : "false");
  return (bit_identical && reload_ok && p99_ok) ? 0 : 1;
}

/// Escapes one CSV field per RFC 4180 (quoted when it holds a comma,
/// quote, or newline).
void AppendCsvField(const std::string& value, std::string* out) {
  if (value.find_first_of(",\"\n\r") == std::string::npos) {
    out->append(value);
    return;
  }
  out->push_back('"');
  for (const char c : value) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

util::Result<RefitArmRow> MeasureRefitArm(size_t tuples) {
  RefitArmRow row;
  datagen::DblpOptions dblp_options;
  dblp_options.target_tuples = tuples;
  const relation::Relation rel = datagen::GenerateDblp(dblp_options);
  row.tuples = rel.NumTuples();

  // The full fit is the refit's alternative, so it is what the speedup
  // is measured against. φ_T = 1.0 bounds the Phase-1 summary count the
  // way the paper runs large inputs (see the --stream arm) so the
  // quadratic Phase-2 matrix doesn't dominate the 100k-tuple run.
  model::FitOptions fit_options;
  fit_options.phi_t = 1.0;
  fit_options.k = 10;
  const auto fit_start = std::chrono::steady_clock::now();
  auto fitted = model::FitModel(rel, fit_options);
  row.fit_seconds = Seconds(fit_start);
  if (!fitted.ok()) return fitted.status();

  const std::string path =
      "/tmp/micro_limbo_refit_" + std::to_string(getpid()) + ".limbo";
  util::Status saved = model::Save(*fitted, path);
  if (!saved.ok()) return saved;
  auto parent = model::Load(path);  // picks up the payload checksum
  if (!parent.ok()) {
    unlink(path.c_str());
    return parent.status();
  }

  // Refit batch: ~1% of the input, replayed from fit-time rows so the
  // drift score lands on the no-drift patch path by construction.
  row.extra_rows = std::min<size_t>(rel.NumTuples(),
                                    std::max<size_t>(tuples / 100, 16));
  std::string csv;
  for (relation::AttributeId a = 0; a < rel.NumAttributes(); ++a) {
    if (a > 0) csv.push_back(',');
    AppendCsvField(rel.schema().Name(a), &csv);
  }
  csv.push_back('\n');
  for (size_t t = 0; t < row.extra_rows; ++t) {
    for (relation::AttributeId a = 0; a < rel.NumAttributes(); ++a) {
      if (a > 0) csv.push_back(',');
      AppendCsvField(rel.TextAt(static_cast<relation::TupleId>(t), a),
                     &csv);
    }
    csv.push_back('\n');
  }

  auto source = relation::CsvStringSource::Open(csv);
  if (!source.ok()) {
    unlink(path.c_str());
    return source.status();
  }
  const auto refit_start = std::chrono::steady_clock::now();
  auto refit = model::RefitModel(*parent, *source);
  row.refit_seconds = Seconds(refit_start);
  if (!refit.ok()) {
    unlink(path.c_str());
    return refit.status();
  }
  row.drift_score = refit->drift_score;
  row.drift_class = model::DriftClassName(refit->drift_class);
  row.speedup = row.refit_seconds > 0.0
                    ? row.fit_seconds / row.refit_seconds
                    : 0.0;

  // Hot-reload gate: serve the parent, precompute expected assign
  // responses, swap the refitted child in over the same path, replay.
  // The no-drift patch keeps representatives and dictionary entries
  // frozen, so every response must come back byte-identical.
  serve::Registry registry({}, 0);
  util::Status added = registry.AddModel("refit", path);
  if (!added.ok()) {
    unlink(path.c_str());
    return added;
  }
  row.replayed = std::min<size_t>(rel.NumTuples(), 20000);
  core::LossKernel kernel;
  std::vector<std::string> queries;
  std::vector<std::string> expected;
  queries.reserve(row.replayed);
  expected.reserve(row.replayed);
  for (size_t t = 0; t < row.replayed; ++t) {
    queries.push_back(
        AssignQuery(rel, static_cast<relation::TupleId>(t), "refit"));
    expected.push_back(registry.HandleLine(queries.back(), &kernel));
  }
  saved = model::Save(refit->bundle, path);
  if (!saved.ok()) {
    unlink(path.c_str());
    return saved;
  }
  const util::Status reloaded = registry.Reload("refit");
  bool lineage_ok = false;
  for (const serve::ModelInfo& info : registry.ListModels()) {
    lineage_ok = info.name == "refit" && info.version == 2 &&
                 info.has_lineage && info.lineage.refit_generation >= 1;
  }
  row.reload_ok = reloaded.ok() && lineage_ok;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (registry.HandleLine(queries[i], &kernel) != expected[i]) {
      ++row.mismatched;
    }
  }
  unlink(path.c_str());
  return row;
}

/// Standalone `--refit` mode: one refit arm, one JSON line. Exit 0 iff
/// the batch stayed on the no-drift path, the patch beat the full fit
/// by at least 5x, and the reload gate saw zero mismatched responses.
int RunRefitBench(size_t tuples) {
  auto arm = MeasureRefitArm(tuples);
  if (!arm.ok()) {
    std::fprintf(stderr, "%s\n", arm.status().ToString().c_str());
    return 1;
  }
  const bool no_drift = std::strcmp(arm->drift_class, "no-drift") == 0;
  const bool speedup_ok = arm->speedup >= 5.0;
  const bool bit_identical = arm->reload_ok && arm->mismatched == 0;
  std::printf(
      "{\"benchmark\": \"refit\", \"tuples\": %zu, \"appended_rows\": %zu, "
      "\"full_fit_seconds\": %.4f, \"refit_seconds\": %.4f, "
      "\"speedup\": %.1f, \"drift_score\": %.4f, \"drift_class\": \"%s\", "
      "\"reload_ok\": %s, \"replayed\": %zu, \"mismatched\": %llu, "
      "\"bit_identical\": %s}\n",
      arm->tuples, arm->extra_rows, arm->fit_seconds, arm->refit_seconds,
      arm->speedup, arm->drift_score, arm->drift_class,
      arm->reload_ok ? "true" : "false", arm->replayed,
      static_cast<unsigned long long>(arm->mismatched),
      bit_identical ? "true" : "false");
  if (!speedup_ok) {
    std::fprintf(stderr, "refit speedup %.1fx below the 5x floor\n",
                 arm->speedup);
  }
  return (no_drift && speedup_ok && bit_identical) ? 0 : 1;
}

/// Standalone `--schemes` mode: the approximate acyclic-scheme miner on
/// the DB2 join sample and a DBLP-sized generator output. Each dataset
/// is mined twice — oracle at 1 lane and at 4 — and the scheme lists
/// (rendered text, J-measures included) must match exactly; the entropy
/// oracle's determinism contract makes them bit-identical. Exit 0 iff
/// every dataset agrees across lanes and DBLP yields >= 1 scheme.
int RunSchemesBench(size_t tuples) {
  struct Arm {
    const char* name;
    relation::Relation rel;
  };
  std::vector<Arm> arms;
  {
    auto db2 = datagen::Db2Sample::JoinedRelation();
    if (!db2.ok()) {
      std::fprintf(stderr, "%s\n", db2.status().ToString().c_str());
      return 1;
    }
    arms.push_back({"db2", std::move(*db2)});
    datagen::DblpOptions dblp_options;
    dblp_options.target_tuples = tuples;
    arms.push_back({"dblp", datagen::GenerateDblp(dblp_options)});
  }
  bool ok = true;
  for (Arm& arm : arms) {
    schemes::MineOptions options;
    std::string rendered[2];
    double seconds[2] = {0.0, 0.0};
    size_t count = 0;
    double total_entropy = 0.0;
    double min_j = 0.0;
    uint64_t pairs_pruned = 0;
    uint64_t pairs_evaluated = 0;
    uint64_t oracle_sets = 0;
    for (int lane = 0; lane < 2; ++lane) {
      relation::RelationRowSource source(arm.rel);
      schemes::EntropyOracleOptions oracle_options;
      oracle_options.threads = lane == 0 ? 1 : 4;
      schemes::EntropyOracle oracle(source, oracle_options);
      const auto start = std::chrono::steady_clock::now();
      auto mined = schemes::MineAcyclicSchemes(oracle, options);
      seconds[lane] = Seconds(start);
      if (!mined.ok()) {
        std::fprintf(stderr, "%s\n", mined.status().ToString().c_str());
        return 1;
      }
      count = mined->schemes.size();
      total_entropy = mined->total_entropy;
      min_j = mined->schemes.empty() ? 0.0 : mined->schemes[0].j_measure;
      pairs_pruned = mined->pairs_pruned;
      pairs_evaluated = mined->pairs_evaluated;
      oracle_sets = oracle.stats().sets_counted;
      for (const auto& scheme : mined->schemes) {
        rendered[lane] += scheme.ToString(arm.rel.schema());
        rendered[lane].push_back('\n');
      }
    }
    const bool lane_identical = rendered[0] == rendered[1];
    std::printf(
        "{\"benchmark\": \"schemes\", \"dataset\": \"%s\", \"tuples\": %zu, "
        "\"attributes\": %zu, \"epsilon\": %.4f, \"schemes\": %zu, "
        "\"total_entropy\": %.4f, \"best_j\": %.6f, \"pairs_pruned\": %llu, "
        "\"pairs_evaluated\": %llu, \"oracle_sets\": %llu, "
        "\"seconds_1_lane\": %.4f, \"seconds_4_lanes\": %.4f, "
        "\"lane_identical\": %s}\n",
        arm.name, arm.rel.NumTuples(), arm.rel.NumAttributes(),
        options.epsilon, count, total_entropy, min_j,
        static_cast<unsigned long long>(pairs_pruned),
        static_cast<unsigned long long>(pairs_evaluated),
        static_cast<unsigned long long>(oracle_sets), seconds[0], seconds[1],
        lane_identical ? "true" : "false");
    if (!lane_identical) {
      std::fprintf(stderr, "%s: scheme lists differ between 1 and 4 lanes\n",
                   arm.name);
      ok = false;
    }
    if (std::strcmp(arm.name, "dblp") == 0 && count == 0) {
      std::fprintf(stderr, "dblp: expected at least one acyclic scheme\n");
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool thread_scaling = false;
  bool kernel_bench = false;
  bool report_mode = false;
  bool stream_bench = false;
  bool serve_bench = false;
  bool load_bench = false;
  bool refit_bench = false;
  bool schemes_bench = false;
  size_t refit_tuples = 0;
  std::string stream_arm;
  std::string stream_csv;
  std::string report_path;
  size_t tuples = 50000;
  bool tuples_given = false;
  size_t connections = 8;
  size_t serve_workers = 4;
  double load_seconds = 2.0;
  double p99_limit_us = 0.0;
  size_t batch_max = 16;
  int batch_wait_us = 0;
  size_t cache_entries = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--thread-scaling") == 0) {
      thread_scaling = true;
    } else if (std::strcmp(argv[i], "--kernel") == 0) {
      kernel_bench = true;
    } else if (std::strcmp(argv[i], "--stream") == 0) {
      stream_bench = true;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve_bench = true;
    } else if (std::strcmp(argv[i], "--load") == 0) {
      load_bench = true;
    } else if (std::strcmp(argv[i], "--refit") == 0) {
      refit_bench = true;
    } else if (std::strcmp(argv[i], "--schemes") == 0) {
      schemes_bench = true;
    } else if (std::strncmp(argv[i], "--refit-tuples=", 15) == 0) {
      refit_tuples = static_cast<size_t>(std::strtoull(argv[i] + 15,
                                                       nullptr, 10));
    } else if (std::strncmp(argv[i], "--connections=", 14) == 0) {
      connections = static_cast<size_t>(std::strtoull(argv[i] + 14,
                                                      nullptr, 10));
    } else if (std::strncmp(argv[i], "--serve-workers=", 16) == 0) {
      serve_workers = static_cast<size_t>(std::strtoull(argv[i] + 16,
                                                        nullptr, 10));
    } else if (std::strncmp(argv[i], "--load-seconds=", 15) == 0) {
      load_seconds = std::strtod(argv[i] + 15, nullptr);
    } else if (std::strncmp(argv[i], "--p99-limit-us=", 15) == 0) {
      p99_limit_us = std::strtod(argv[i] + 15, nullptr);
    } else if (std::strncmp(argv[i], "--batch-max=", 12) == 0) {
      batch_max = static_cast<size_t>(std::strtoull(argv[i] + 12,
                                                    nullptr, 10));
    } else if (std::strncmp(argv[i], "--batch-wait-us=", 16) == 0) {
      batch_wait_us = static_cast<int>(std::strtol(argv[i] + 16,
                                                   nullptr, 10));
    } else if (std::strncmp(argv[i], "--cache-entries=", 16) == 0) {
      cache_entries = static_cast<size_t>(std::strtoull(argv[i] + 16,
                                                        nullptr, 10));
    } else if (std::strncmp(argv[i], "--stream-arm=", 13) == 0) {
      stream_arm = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--stream-csv=", 13) == 0) {
      stream_csv = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--report") == 0) {
      report_mode = true;
    } else if (std::strncmp(argv[i], "--report=", 9) == 0) {
      report_mode = true;
      report_path = argv[i] + 9;
    } else {
      unsigned long long n = 0;
      if (std::sscanf(argv[i], "--tuples=%llu", &n) == 1 && n > 0) {
        tuples = static_cast<size_t>(n);
        tuples_given = true;
      }
    }
  }
  if (!stream_arm.empty()) return RunStreamArm(stream_arm, stream_csv);
  if (stream_bench) return RunStreamBench(tuples_given ? tuples : 20000);
  if (serve_bench) return RunServeBench(tuples_given ? tuples : 10000);
  if (load_bench) {
    if (connections == 0) connections = 1;
    if (serve_workers == 0) serve_workers = 1;
    if (load_seconds <= 0.0) load_seconds = 2.0;
    if (batch_max == 0) batch_max = 1;
    if (batch_wait_us < 0) batch_wait_us = 0;
    return RunLoadBench(tuples_given ? tuples : 5000, connections,
                        serve_workers, load_seconds, p99_limit_us,
                        batch_max, batch_wait_us, cache_entries);
  }
  if (refit_bench) return RunRefitBench(tuples_given ? tuples : 20000);
  if (schemes_bench) return RunSchemesBench(tuples_given ? tuples : 20000);
  if (thread_scaling) return RunThreadScaling(tuples);
  if (kernel_bench) return RunKernelBench(tuples_given ? tuples : 10000);
  if (report_mode) {
    const size_t report_tuples = tuples_given ? tuples : 10000;
    return RunReportMode(report_tuples, report_path,
                         refit_tuples > 0 ? refit_tuples : report_tuples);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
