#include "dblp_clusters.h"

#include "bench_util.h"
#include "core/horizontal_partition.h"
#include "core/value_clustering.h"
#include "datagen/dblp.h"
#include "fd/min_cover.h"
#include "fd/tane.h"
#include "relation/ops.h"
#include "util/logging.h"

namespace limbo::bench {

DblpClusters MakeDblpClusters(size_t target_tuples) {
  datagen::DblpOptions gen;
  gen.target_tuples = target_tuples;
  const relation::Relation full = datagen::GenerateDblp(gen);
  auto projected = relation::ProjectNames(
      full, {"Author", "Pages", "BookTitle", "Year", "Volume", "Journal",
             "Number"});
  LIMBO_CHECK(projected.ok());

  core::HorizontalPartitionOptions options;
  options.phi = 0.5;
  options.k = 2;
  auto partition = core::HorizontallyPartition(*projected, options);
  LIMBO_CHECK(partition.ok());

  const auto journal_attr = projected->schema().Find("Journal").value();
  const auto school_attr = full.schema().Find("School").value();

  // The journal cluster is the one whose Journal column is mostly
  // non-NULL.
  std::vector<size_t> journal_non_null(2, 0);
  for (relation::TupleId t = 0; t < projected->NumTuples(); ++t) {
    if (!projected->TextAt(t, journal_attr).empty()) {
      ++journal_non_null[partition->assignments[t]];
    }
  }
  const uint32_t journal_label = journal_non_null[1] > journal_non_null[0];

  std::vector<relation::TupleId> conference_ids;
  std::vector<relation::TupleId> journal_ids;
  std::vector<relation::TupleId> misc_ids;
  for (relation::TupleId t = 0; t < projected->NumTuples(); ++t) {
    if (!full.TextAt(t, school_attr).empty()) {
      misc_ids.push_back(t);
    } else if (partition->assignments[t] == journal_label) {
      journal_ids.push_back(t);
    } else {
      conference_ids.push_back(t);
    }
  }
  DblpClusters out{relation::SelectRows(*projected, conference_ids),
                   relation::SelectRows(*projected, journal_ids),
                   relation::SelectRows(*projected, misc_ids)};
  return out;
}

util::Result<ClusterAnalysis> AnalyzeCluster(const relation::Relation& rel,
                                             double phi_t, double phi_v,
                                             double psi) {
  ClusterAnalysis analysis;

  // FDs: TANE with min LHS 1 (constant columns yield [B]→A like the
  // paper's FDEP run) and the minimum cover.
  fd::TaneOptions tane_options;
  tane_options.min_lhs = 1;
  LIMBO_ASSIGN_OR_RETURN(auto fds, fd::Tane::Mine(rel, tane_options));
  analysis.num_fds = fds.size();
  const auto cover = fd::MinimumCover(fds, /*merge_same_lhs=*/false);
  analysis.cover_size = cover.size();

  // Double clustering + attribute grouping.
  size_t num_clusters = 0;
  const std::vector<uint32_t> labels =
      TupleClusterLabels(rel, phi_t, &num_clusters);
  core::ValueClusteringOptions value_options;
  value_options.phi_v = phi_v;
  value_options.tuple_labels = &labels;
  value_options.num_tuple_clusters = num_clusters;
  LIMBO_ASSIGN_OR_RETURN(auto values, core::ClusterValues(rel, value_options));
  LIMBO_ASSIGN_OR_RETURN(analysis.grouping,
                         core::GroupAttributes(rel, values));

  core::FdRankOptions rank_options;
  rank_options.psi = psi;
  LIMBO_ASSIGN_OR_RETURN(analysis.ranked,
                         core::RankFds(cover, analysis.grouping, rank_options));
  return analysis;
}

}  // namespace limbo::bench
