// Reproduces Table 5: the top-ranked functional dependencies of DBLP
// horizontal partition 1 (conference publications), with their RAD/RTR.
//
// Expected shape (paper): the highest-ranked FDs are over the all-NULL
// journal columns — [Volume]→[Journal] and [Number]→[Journal] — with
// RAD = RTR = 1.0 (maximal redundancy), because in this cluster those
// attributes carry a single (NULL) value.

#include <cstdio>

#include "bench_util.h"
#include "core/measures.h"
#include "dblp_clusters.h"

namespace {
using namespace limbo;  // NOLINT
}  // namespace

int main() {
  bench::Banner("Table 5 — ranked FDs of DBLP cluster 1 (conference)",
                "phi_T = 0.5, phi_V = 1.0, psi = 0.5.");

  const bench::DblpClusters clusters = bench::MakeDblpClusters(50000);
  const relation::Relation& rel = clusters.conference;
  std::printf("\nCluster 1: %zu tuples (paper: 35892)\n", rel.NumTuples());

  auto analysis = bench::AnalyzeCluster(rel, 0.5, 1.0, 0.5);
  if (!analysis.ok()) {
    std::fprintf(stderr, "%s\n", analysis.status().ToString().c_str());
    return 1;
  }
  std::printf("FDs: %zu, minimum cover: %zu (paper: 12 / 11)\n",
              analysis->num_fds, analysis->cover_size);

  std::printf("\nTop-ranked dependencies:\n");
  std::printf("  %-44s %-8s %-7s %-7s\n", "FD", "rank", "RAD", "RTR");
  size_t shown = 0;
  for (const auto& r : analysis->ranked) {
    const auto attrs = r.fd.lhs.Union(r.fd.rhs).ToList();
    std::printf("  %-44s %-8.4f %-7.3f %-7.3f\n",
                r.fd.ToString(rel.schema()).c_str(), r.rank,
                core::Rad(rel, attrs), core::Rtr(rel, attrs));
    if (++shown == 4) break;
  }

  std::printf("\nPaper's Table 5:\n");
  std::printf("  [Volume]->[Journal]   RAD=1.0 RTR=1.0\n");
  std::printf("  [Number]->[Journal]   RAD=1.0 RTR=1.0\n");
  std::printf(
      "\nShape check: the top FDs relate the all-NULL journal columns "
      "with RAD=RTR=1.0; conference attributes (Author, Pages, BookTitle) "
      "have large domains and rank lower.\n");
  return 0;
}
