// Reproduces Figures 16-18: the per-cluster attribute dendrograms of the
// three DBLP horizontal partitions.
//
// Expected shapes (paper):
//  - Cluster 1 (Figure 16): Volume/Journal/Number at zero distance (all
//    NULL); Author and Pages almost zero (near one-to-one); BookTitle
//    close to them.
//  - Cluster 2 (Figure 17): correlations among Journal, Volume, Number
//    and Year; Author/Pages apart.
//  - Cluster 3 (Figure 18): small, associations essentially random, no
//    (interesting) functional dependencies — the relation has no internal
//    structure.

#include <cstdio>

#include "bench_util.h"
#include "core/dendrogram.h"
#include "dblp_clusters.h"
#include "fd/tane.h"

namespace {

using namespace limbo;  // NOLINT

void ShowCluster(const char* title, const relation::Relation& rel,
                 double phi_t, double phi_v) {
  std::printf("\n--- %s: %zu tuples ---\n", title, rel.NumTuples());
  auto analysis = bench::AnalyzeCluster(rel, phi_t, phi_v, 0.5);
  if (!analysis.ok()) {
    std::printf("  attribute grouping not applicable: %s\n",
                analysis.status().ToString().c_str());
    fd::TaneOptions options;
    options.min_lhs = 1;
    auto fds = fd::Tane::Mine(rel, options);
    if (fds.ok()) {
      std::printf("  (TANE still reports %zu FDs over its attributes)\n",
                  fds->size());
    }
    return;
  }
  std::vector<std::string> leaf_labels;
  for (relation::AttributeId a : analysis->grouping.attributes) {
    leaf_labels.push_back(rel.schema().Name(a));
  }
  std::printf("%s",
              core::RenderDendrogram(analysis->grouping.aib, leaf_labels)
                  .c_str());
  std::printf("%s", analysis->grouping.DendrogramText(rel.schema()).c_str());
  std::printf("  max merge loss: %.5f; FDs: %zu (cover %zu)\n",
              analysis->grouping.max_merge_loss, analysis->num_fds,
              analysis->cover_size);
}

}  // namespace

int main() {
  bench::Banner("Figures 16-18 — per-cluster attribute dendrograms",
                "DBLP partitions; phi_T = 0.5, phi_V = 1.0, phi_A = 0.");

  const bench::DblpClusters clusters = bench::MakeDblpClusters(50000);
  ShowCluster("Figure 16: cluster 1 (conference)", clusters.conference, 0.5,
              1.0);
  ShowCluster("Figure 17: cluster 2 (journal)", clusters.journal, 0.5, 1.0);
  // The misc cluster is tiny; exact clustering (phi_T = 0) is affordable
  // and mirrors the paper's small-cluster treatment.
  ShowCluster("Figure 18: cluster 3 (misc)", clusters.misc, 0.0, 0.5);

  std::printf(
      "\nShape check: cluster 1 pins the all-NULL journal columns at zero "
      "loss; cluster 2 groups Journal/Volume/Number/Year; in cluster 3 "
      "only the all-NULL columns cohere and the populated attributes join "
      "at a very large loss — the paper's 'rather random' associations "
      "with no internal structure.\n");
  return 0;
}
