// Ablation (Section 6.2): Double Clustering — expressing attribute
// values over tuple *clusters* instead of raw tuples — is the paper's
// scale-up device for value clustering. This driver compares direct
// value clustering against Double Clustering on growing DBLP samples:
// runtime, and whether the headline CV_D structure (the NULL-column
// group) survives the compression.

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/value_clustering.h"
#include "datagen/dblp.h"

namespace {

using namespace limbo;  // NOLINT

/// True iff some duplicate value group contains the NULL values of at
/// least two of {Publisher, ISBN, Editor, Series, School, Month} — the
/// co-occurrence the DBLP experiments hinge on.
bool FindsNullBlock(const relation::Relation& rel,
                    const core::ValueClusteringResult& values) {
  for (size_t gi : values.duplicate_groups) {
    size_t null_heavy = 0;
    for (relation::ValueId v : values.groups[gi].values) {
      if (!rel.dictionary().Text(v).empty()) continue;
      const std::string& attr =
          rel.schema().Name(rel.dictionary().Attribute(v));
      if (attr == "Publisher" || attr == "ISBN" || attr == "Editor" ||
          attr == "Series" || attr == "School" || attr == "Month") {
        ++null_heavy;
      }
    }
    if (null_heavy >= 2) return true;
  }
  return false;
}

}  // namespace

int main() {
  bench::Banner("Ablation — Double Clustering for value clustering",
                "Direct (values over tuples) vs Double Clustering (values "
                "over phi_T = 0.5 tuple summaries).");

  std::printf("\n%-8s %-9s %-12s %-10s %-12s %-12s %-10s\n", "tuples",
              "values", "direct ms", "block?", "summary ms", "double ms",
              "block?");
  for (size_t n : {2000, 8000, 20000}) {
    datagen::DblpOptions gen;
    gen.target_tuples = n;
    const relation::Relation rel = datagen::GenerateDblp(gen);

    const auto t0 = std::chrono::steady_clock::now();
    core::ValueClusteringOptions direct;
    direct.phi_v = 1.0;
    auto direct_result = core::ClusterValues(rel, direct);
    const auto t1 = std::chrono::steady_clock::now();

    // The tuple-summary pass is shared with every other tool in the
    // pipeline (duplicates, partitioning, attribute grouping), so it is
    // timed separately from the value-clustering stage proper.
    size_t num_clusters = 0;
    const std::vector<uint32_t> labels =
        bench::TupleClusterLabels(rel, 0.5, &num_clusters);
    const auto t2 = std::chrono::steady_clock::now();
    core::ValueClusteringOptions doubled;
    doubled.phi_v = 1.0;
    doubled.tuple_labels = &labels;
    doubled.num_tuple_clusters = num_clusters;
    auto doubled_result = core::ClusterValues(rel, doubled);
    const auto t3 = std::chrono::steady_clock::now();

    if (!direct_result.ok() || !doubled_result.ok()) return 1;
    std::printf("%-8zu %-9zu %-12.1f %-10s %-12.1f %-12.1f %-10s\n", n,
                rel.NumValues(),
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                FindsNullBlock(rel, *direct_result) ? "yes" : "no",
                std::chrono::duration<double, std::milli>(t2 - t1).count(),
                std::chrono::duration<double, std::milli>(t3 - t2).count(),
                FindsNullBlock(rel, *doubled_result) ? "yes" : "no");
  }
  std::printf(
      "\nShape check: Double Clustering keeps finding the NULL-column "
      "duplicate group while its clustering stage runs faster than the "
      "direct path at every size (the tuple-summary pass is shared with "
      "the rest of the pipeline — duplicates, partitioning, grouping — "
      "and is amortized in the paper's workflow).\n");
  return 0;
}
