// Reproduces Figure 15: the attribute dendrogram of the full 13-attribute
// DBLP relation, built with Double Clustering (phi_T = 0.5 tuple
// summaries, then value clustering over them) and phi_A = 0.
//
// Expected shape (paper): the six >=98%-NULL attributes {Publisher, ISBN,
// Editor, Series, School, Month} form a block merging at (almost) zero
// information loss — the NULL value dominates them — while the remaining
// attributes join later.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/attribute_grouping.h"
#include "core/dendrogram.h"
#include "core/value_clustering.h"
#include "datagen/dblp.h"

namespace {
using namespace limbo;  // NOLINT
}  // namespace

int main() {
  bench::Banner("Figure 15 — DBLP attribute dendrogram",
                "Double clustering: phi_T = 0.5 tuple summaries, value "
                "clustering over them, phi_A = 0.");

  datagen::DblpOptions gen;
  gen.target_tuples = 50000;
  const relation::Relation rel = datagen::GenerateDblp(gen);
  std::printf("\nRelation: %zu tuples x %zu attributes, %zu values\n",
              rel.NumTuples(), rel.NumAttributes(), rel.NumValues());

  size_t num_clusters = 0;
  const std::vector<uint32_t> labels =
      bench::TupleClusterLabels(rel, 0.5, &num_clusters);
  std::printf("Tuple summaries at phi_T = 0.5: %zu (paper: 1361)\n",
              num_clusters);

  core::ValueClusteringOptions options;
  options.phi_v = 1.0;
  options.tuple_labels = &labels;
  options.num_tuple_clusters = num_clusters;
  auto values = core::ClusterValues(rel, options);
  auto grouping = core::GroupAttributes(rel, *values);
  if (!grouping.ok()) {
    std::fprintf(stderr, "%s\n", grouping.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> leaf_labels;
  for (relation::AttributeId a : grouping->attributes) {
    leaf_labels.push_back(rel.schema().Name(a));
  }
  std::printf("\nDendrogram (cf. Figure 15):\n%s",
              core::RenderDendrogram(grouping->aib, leaf_labels).c_str());
  std::printf("\nMerge list:\n%s",
              grouping->DendrogramText(rel.schema()).c_str());

  // Verify the NULL-block claim: the six NULL-heavy attributes must all
  // co-reside before any of them joins a non-NULL-heavy attribute.
  fd::AttributeSet null_block;
  for (const char* name :
       {"Publisher", "ISBN", "Editor", "Series", "School", "Month"}) {
    auto a = rel.schema().Find(name);
    if (a.ok()) null_block = null_block.With(*a);
  }
  double block_complete_loss = -1.0;
  double first_escape_loss = -1.0;
  for (const core::Merge& m : grouping->aib.merges()) {
    const auto members = grouping->cluster_members[m.merged];
    if (block_complete_loss < 0 && null_block.IsSubsetOf(members)) {
      block_complete_loss = m.delta_i;
    }
    const auto inter = members.Intersect(null_block);
    if (first_escape_loss < 0 && !inter.Empty() &&
        !members.IsSubsetOf(null_block)) {
      first_escape_loss = m.delta_i;
    }
  }
  std::printf(
      "\nNULL block {Publisher,ISBN,Editor,Series,School,Month}:\n"
      "  fully merged at loss %.5f (paper: ~0)\n"
      "  first merge with a non-NULL attribute at loss %.5f\n"
      "  max merge loss %.5f\n",
      block_complete_loss, first_escape_loss, grouping->max_merge_loss);
  std::printf(
      "Shape check: block-complete loss << escape loss means the NULL "
      "attributes form the paper's near-zero-loss cluster.\n");
  return 0;
}
