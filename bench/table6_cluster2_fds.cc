// Reproduces Table 6: the top-ranked functional dependencies of DBLP
// horizontal partition 2 (journal publications), with their RAD/RTR.
//
// Expected shape (paper): the top FDs relate Journal, Volume, Number and
// Year — [Author,Volume,Journal,Number]→[Year] (RAD 0.754, RTR 0.881)
// and [Author,Year,Volume]→[Journal] (0.858 / 0.982). In our generator
// Year is a function of (Journal, Volume, Number) with spanning volumes,
// so the same family of journal-metadata FDs tops the ranking.

#include <cstdio>

#include "bench_util.h"
#include "core/measures.h"
#include "dblp_clusters.h"

namespace {
using namespace limbo;  // NOLINT
}  // namespace

int main() {
  bench::Banner("Table 6 — ranked FDs of DBLP cluster 2 (journal)",
                "phi_T = 0.5, phi_V = 1.0, psi = 0.5.");

  const bench::DblpClusters clusters = bench::MakeDblpClusters(50000);
  const relation::Relation& rel = clusters.journal;
  std::printf("\nCluster 2: %zu tuples (paper: 13979)\n", rel.NumTuples());

  auto analysis = bench::AnalyzeCluster(rel, 0.5, 1.0, 0.5);
  if (!analysis.ok()) {
    std::fprintf(stderr, "%s\n", analysis.status().ToString().c_str());
    return 1;
  }
  std::printf("FDs: %zu, minimum cover: %zu (paper: 12 / 11)\n",
              analysis->num_fds, analysis->cover_size);

  std::printf("\nTop-ranked dependencies:\n");
  std::printf("  %-52s %-8s %-7s %-7s\n", "FD", "rank", "RAD", "RTR");
  size_t shown = 0;
  for (const auto& r : analysis->ranked) {
    const auto attrs = r.fd.lhs.Union(r.fd.rhs).ToList();
    std::printf("  %-52s %-8.4f %-7.3f %-7.3f\n",
                r.fd.ToString(rel.schema()).c_str(), r.rank,
                core::Rad(rel, attrs), core::Rtr(rel, attrs));
    if (++shown == 4) break;
  }

  std::printf("\nPaper's Table 6:\n");
  std::printf("  [Author,Volume,Journal,Number]->[Year]  RAD=0.754 RTR=0.881\n");
  std::printf("  [Author,Year,Volume]->[Journal]         RAD=0.858 RTR=0.982\n");
  std::printf(
      "\nShape check: the top-ranked FDs are over journal metadata "
      "(Journal/Volume/Number/Year) with high but sub-1.0 RAD/RTR — these "
      "columns repeat heavily but are not constant.\n");
  return 0;
}
