// Reproduces Table 2: locating the *values* responsible for dirty
// tuples. After tuple clustering (phi_T), attribute values are clustered
// over the tuple clusters (Double Clustering, Section 6.2); an altered
// value is "correctly placed" when it lands in the same value group as
// the original value it replaced.
//
// Reported: average correctly-placed values per dirty tuple (the paper's
// Found column counts per-tuple placements: 1->1, 10->9, ...).

#include <cstdio>

#include "bench_util.h"
#include "core/value_clustering.h"
#include "datagen/db2_sample.h"
#include "datagen/error_inject.h"

namespace {

using namespace limbo;  // NOLINT

constexpr size_t kAlteredGrid[] = {1, 2, 4, 6, 10};

double MeasurePlaced(size_t num_dirty, size_t altered, double phi_t,
                     double phi_v) {
  double total = 0.0;
  const int kSeeds = 5;
  for (int s = 0; s < kSeeds; ++s) {
    auto base = datagen::Db2Sample::JoinedRelation();
    datagen::ErrorInjectionOptions inject;
    inject.seed = 2000 + s;
    inject.num_dirty_tuples = num_dirty;
    inject.values_altered = altered;
    auto dirty = datagen::InjectErrors(*base, inject);
    const relation::Relation& rel = dirty->dirty;

    size_t num_clusters = 0;
    const std::vector<uint32_t> labels =
        bench::TupleClusterLabels(rel, phi_t, &num_clusters);

    core::ValueClusteringOptions options;
    options.phi_v = phi_v;
    options.tuple_labels = &labels;
    options.num_tuple_clusters = num_clusters;
    auto values = core::ClusterValues(rel, options);

    // Group index per value id.
    std::vector<uint32_t> group_of(rel.NumValues());
    for (uint32_t g = 0; g < values->groups.size(); ++g) {
      for (relation::ValueId v : values->groups[g].values) {
        group_of[v] = g;
      }
    }

    size_t placed = 0;
    for (const auto& record : dirty->records) {
      for (size_t i = 0; i < record.altered_attributes.size(); ++i) {
        const relation::AttributeId attr = record.altered_attributes[i];
        // The original text is what the source tuple still holds.
        auto original = rel.dictionary().Find(
            attr, rel.TextAt(record.source_id, attr));
        auto corrupted = rel.dictionary().Find(attr, record.dirty_texts[i]);
        if (original.ok() && corrupted.ok() &&
            group_of[*original] == group_of[*corrupted]) {
          ++placed;
        }
      }
    }
    total += static_cast<double>(placed) / num_dirty;
  }
  return total / kSeeds;
}

void Grid(const char* title, size_t num_dirty, double phi_t,
          const double paper[5]) {
  const double phi_v = 1.5;
  std::printf("\n%s (phi_T=%.1f, #dirty=%zu, phi_V=%.1f)\n", title, phi_t,
              num_dirty, phi_v);
  std::printf("  %-14s %-10s %-22s\n", "ValuesAltered", "Paper",
              "Measured (per tuple)");
  for (int i = 0; i < 5; ++i) {
    std::printf("  %-14zu %-10.0f %-22.1f\n", kAlteredGrid[i], paper[i],
                MeasurePlaced(num_dirty, kAlteredGrid[i], phi_t, phi_v));
  }
}

}  // namespace

int main() {
  bench::Banner("Table 2 — erroneous-value placement (DB2 sample)",
                "Found = altered values clustered with the value they "
                "replaced (per dirty tuple).");

  const double paper_5[5] = {1, 2, 4, 5, 9};
  const double paper_20[5] = {1, 2, 4, 5, 7};
  const double paper_phi02[5] = {1, 2, 2, 4, 7};
  const double paper_phi03[5] = {1, 1, 2, 2, 6};

  // phi_ours = 3 * phi_paper; see the Table 1 driver for the threshold
  // normalization calibration.
  Grid("Grid A1 (paper phi_T=0.1)", 5, 0.3, paper_5);
  Grid("Grid A2 (paper phi_T=0.1)", 20, 0.3, paper_20);
  Grid("Grid B1 (paper phi_T=0.2, #dirty=10)", 10, 0.6, paper_phi02);
  Grid("Grid B2 (paper phi_T=0.3, #dirty=10)", 10, 0.9, paper_phi03);

  std::printf(
      "\nShape check: placements track the number of altered values (1 -> "
      "~1, 2 -> ~1.5, 4 -> ~3) and degrade as phi_T coarsens the tuple "
      "summaries. Beyond ~6 alterations our run falls below the paper's "
      "because the fresh error values of one dirty tuple have identical "
      "conditionals and merge with *each other* first, forming an error "
      "blob too heavy to join the original value's group.\n");
  return 0;
}
