// Reproduces Table 1: detection of injected near-duplicate ("dirty")
// tuples in the DB2 sample relation via tuple clustering.
//
// Grid A: phi_T = 0.1, #dirty in {5, 20}, values altered in
//         {1, 2, 4, 6, 10}.
// Grid B: #dirty = 5, phi_T in {0.2, 0.3}.
//
// Expected shape (paper): all duplicates found for few altered values;
// graceful degradation as more values are altered or phi_T grows coarse.
//
// Calibration: our Phase-1 threshold phi*I(V;T)/n uses base-2 logs and
// the exact mutual information, which is ~3x stricter than the original
// implementation's normalization; each grid therefore runs at
// phi_ours = 3 * phi_paper (stated in the grid headers).

#include <cstdio>
#include <set>

#include "bench_util.h"
#include "core/tuple_clustering.h"
#include "datagen/db2_sample.h"
#include "datagen/error_inject.h"

namespace {

using namespace limbo;  // NOLINT

constexpr size_t kAlteredGrid[] = {1, 2, 4, 6, 10};

struct Measure {
  double found = 0.0;
  /// Fraction of tuples inside reported groups that are genuinely part of
  /// an injected duplicate pair. Coarser summaries drag unrelated tuples
  /// into groups — the paper's "identification becomes more difficult".
  double purity = 0.0;
};

/// Averages over several seeds (the paper injects random errors; we
/// average to de-noise).
Measure MeasureFound(size_t num_dirty, size_t altered, double phi_t) {
  Measure m;
  const int kSeeds = 5;
  for (int s = 0; s < kSeeds; ++s) {
    auto base = datagen::Db2Sample::JoinedRelation();
    datagen::ErrorInjectionOptions inject;
    inject.seed = 1000 + s;
    inject.num_dirty_tuples = num_dirty;
    inject.values_altered = altered;
    auto dirty = datagen::InjectErrors(*base, inject);
    core::DuplicateTupleOptions options;
    options.phi_t = phi_t;
    auto report = core::FindDuplicateTuples(dirty->dirty, options);
    m.found += static_cast<double>(
        bench::CountRecoveredTuples(*report, dirty->records));
    std::set<relation::TupleId> relevant;
    for (const auto& record : dirty->records) {
      relevant.insert(record.dirty_id);
      relevant.insert(record.source_id);
    }
    size_t grouped = 0;
    size_t grouped_relevant = 0;
    for (const auto& group : report->groups) {
      grouped += group.tuples.size();
      for (relation::TupleId t : group.tuples) {
        grouped_relevant += relevant.count(t);
      }
    }
    m.purity += grouped == 0 ? 1.0
                             : static_cast<double>(grouped_relevant) /
                                   static_cast<double>(grouped);
  }
  m.found /= kSeeds;
  m.purity /= kSeeds;
  return m;
}

void Grid(const char* title, size_t num_dirty, double phi_t,
          const double paper[5]) {
  std::printf("\n%s (phi_T=%.1f, #dirty=%zu)\n", title, phi_t, num_dirty);
  std::printf("  %-14s %-10s %-10s %-10s\n", "ValuesAltered", "Paper",
              "Measured", "Purity");
  for (int i = 0; i < 5; ++i) {
    const Measure m = MeasureFound(num_dirty, kAlteredGrid[i], phi_t);
    std::printf("  %-14zu %-10.0f %-10.1f %-10.2f\n", kAlteredGrid[i],
                paper[i], m.found, m.purity);
  }
}

}  // namespace

int main() {
  bench::Banner("Table 1 — erroneous-tuple detection (DB2 sample)",
                "Found = injected dirty tuples grouped with their source "
                "tuple.");

  const double paper_5[5] = {5, 5, 5, 4, 4};
  const double paper_20[5] = {20, 20, 19, 17, 15};
  const double paper_phi02[5] = {5, 5, 4, 3, 3};
  const double paper_phi03[5] = {4, 3, 3, 2, 2};

  Grid("Grid A1 (paper phi_T=0.1)", 5, 0.3, paper_5);
  Grid("Grid A2 (paper phi_T=0.1)", 20, 0.3, paper_20);
  Grid("Grid B1 (paper phi_T=0.2)", 5, 0.6, paper_phi02);
  Grid("Grid B2 (paper phi_T=0.3)", 5, 0.9, paper_phi03);

  std::printf(
      "\nShape check: detection is complete for small alterations and "
      "fails once the alterations exceed a phi_T-dependent budget, and "
      "the group *purity* collapses as phi_T grows — the paper's "
      "observation that coarse summaries make identification harder.\n");
  return 0;
}
