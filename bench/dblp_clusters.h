#ifndef LIMBO_BENCH_DBLP_CLUSTERS_H_
#define LIMBO_BENCH_DBLP_CLUSTERS_H_

#include <vector>

#include "core/attribute_grouping.h"
#include "core/fd_rank.h"
#include "relation/relation.h"
#include "util/result.h"

namespace limbo::bench {

/// The three DBLP partitions of Section 8.2, on the 7-attribute
/// projection {Author, Pages, BookTitle, Year, Volume, Journal, Number}.
///
/// conference/journal come from the information-bottleneck horizontal
/// partitioning (k = 2; the misc tail rides with the conference cluster —
/// see the Table-4 driver for the documented deviation). misc is the
/// ground-truth thesis/report tail, extracted by its School attribute so
/// the paper's cluster-3 analysis (Figure 18) can still be reproduced.
struct DblpClusters {
  relation::Relation conference;
  relation::Relation journal;
  relation::Relation misc;
};

DblpClusters MakeDblpClusters(size_t target_tuples);

/// The per-cluster structure-discovery pipeline of Section 8.2: tuple
/// summaries at φ_T, Double-Clustered value groups at φ_V, attribute
/// grouping, TANE (min LHS 1, as the paper's FDEP emits [B]→A on
/// constant columns), minimum cover, FD-RANK at ψ.
struct ClusterAnalysis {
  size_t num_fds = 0;
  size_t cover_size = 0;
  core::AttributeGroupingResult grouping;
  std::vector<core::RankedFd> ranked;
};

util::Result<ClusterAnalysis> AnalyzeCluster(const relation::Relation& rel,
                                             double phi_t, double phi_v,
                                             double psi);

}  // namespace limbo::bench

#endif  // LIMBO_BENCH_DBLP_CLUSTERS_H_
