// Duplicate-elimination demo (Section 6.1.1 / 8.1.1): inject dirty
// near-duplicate tuples into the DB2-style sample relation and recover
// them with tuple clustering at various phi_T.
//
// Build & run:  ./build/examples/dedup_detection

#include <cstdio>

#include "core/tuple_clustering.h"
#include "datagen/db2_sample.h"
#include "datagen/error_inject.h"
#include "mining/similarity.h"

namespace {

using namespace limbo;  // NOLINT: example brevity

/// How many injected tuples ended up grouped with their source.
size_t CountRecovered(const core::DuplicateTupleReport& report,
                      const std::vector<datagen::DirtyRecord>& records) {
  size_t found = 0;
  for (const auto& record : records) {
    for (const auto& group : report.groups) {
      bool has_dirty = false;
      bool has_source = false;
      for (relation::TupleId t : group.tuples) {
        has_dirty |= (t == record.dirty_id);
        has_source |= (t == record.source_id);
      }
      if (has_dirty && has_source) {
        ++found;
        break;
      }
    }
  }
  return found;
}

int Run() {
  auto base = datagen::Db2Sample::JoinedRelation();
  if (!base.ok()) return 1;
  std::printf("Base relation: %zu tuples x %zu attributes\n",
              base->NumTuples(), base->NumAttributes());

  datagen::ErrorInjectionOptions inject;
  inject.num_dirty_tuples = 5;
  inject.values_altered = 2;
  auto dirty = datagen::InjectErrors(*base, inject);
  if (!dirty.ok()) return 1;
  std::printf(
      "Injected %zu near-duplicate tuples, each with %zu corrupted "
      "values.\n\n",
      inject.num_dirty_tuples, inject.values_altered);

  for (double phi_t : {0.0, 0.05, 0.1, 0.2}) {
    core::DuplicateTupleOptions options;
    options.phi_t = phi_t;
    auto report = core::FindDuplicateTuples(dirty->dirty, options);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "phi_T=%.2f: %zu candidate groups, recovered %zu/%zu injected "
        "duplicates\n",
        phi_t, report->groups.size(),
        CountRecovered(*report, dirty->records), dirty->records.size());
  }

  std::printf(
      "\nphi_T = 0 finds only exact duplicates; growing phi_T tolerates "
      "more corrupted values, exactly as in Table 1 of the paper.\n");

  // The combination the paper names as future work: verify the coarse
  // information-theoretic candidates with string similarity.
  core::DuplicateTupleOptions sloppy;
  sloppy.phi_t = 0.6;
  auto raw = core::FindDuplicateTuples(dirty->dirty, sloppy);
  if (!raw.ok()) return 1;
  const auto refined =
      mining::RefineWithStringSimilarity(dirty->dirty, *raw, 0.9);
  size_t raw_tuples = 0;
  size_t refined_tuples = 0;
  for (const auto& g : raw->groups) raw_tuples += g.tuples.size();
  for (const auto& g : refined.groups) refined_tuples += g.tuples.size();
  std::printf(
      "\nCombining with edit-distance verification (the paper's future-"
      "work suggestion): a sloppy phi_T=0.6 pass groups %zu tuples; "
      "similarity refinement keeps %zu (this relation genuinely contains "
      "near-duplicate sibling rows) and still recovers %zu/%zu injected "
      "duplicates.\n",
      raw_tuples, refined_tuples, CountRecovered(refined, dirty->records),
      dirty->records.size());
  return 0;
}

}  // namespace

int main() { return Run(); }
