// Dependency-mining toolbox demo: exact FDs (FDEP vs TANE agree),
// approximate FDs with g3 errors, multi-valued dependencies, minimum
// cover and an actual lossless decomposition — the full constraint-
// mining substrate surrounding the paper's FD-RANK.
//
// Build & run:  ./build/examples/fd_toolbox

#include <cstdio>

#include "core/decompose.h"
#include "datagen/db2_sample.h"
#include "datagen/error_inject.h"
#include "fd/approx.h"
#include "fd/fdep.h"
#include "fd/min_cover.h"
#include "fd/mvd.h"
#include "fd/tane.h"

namespace {

using namespace limbo;  // NOLINT

int Run() {
  auto rel = datagen::Db2Sample::JoinedRelation();
  if (!rel.ok()) return 1;
  std::printf("Relation: %zu tuples x %zu attributes\n\n", rel->NumTuples(),
              rel->NumAttributes());

  // 1. Exact FDs with both miners.
  auto fdep = fd::Fdep::Mine(*rel);
  auto tane = fd::Tane::Mine(*rel);
  if (!fdep.ok() || !tane.ok()) return 1;
  std::printf("Exact minimal FDs: FDEP=%zu TANE=%zu (agree: %s)\n",
              fdep->size(), tane->size(),
              *fdep == *tane ? "yes" : "NO!");
  const auto cover = fd::MinimumCover(*fdep);
  std::printf("Minimum cover: %zu FDs, e.g.:\n", cover.size());
  for (size_t i = 0; i < cover.size() && i < 4; ++i) {
    std::printf("  %s\n", cover[i].ToString(rel->schema()).c_str());
  }

  // 2. Approximate FDs after injecting errors.
  datagen::ErrorInjectionOptions inject;
  inject.num_dirty_tuples = 4;
  inject.values_altered = 1;
  auto dirty = datagen::InjectErrors(*rel, inject);
  if (!dirty.ok()) return 1;
  fd::ApproxMinerOptions approx_options;
  approx_options.epsilon = 0.06;
  approx_options.min_lhs = 1;
  approx_options.max_lhs = 1;
  auto approx = fd::MineApproximateFds(dirty->dirty, approx_options);
  if (!approx.ok()) return 1;
  size_t broken = 0;
  for (const auto& a : *approx) {
    if (a.g3 > 0.0) ++broken;
  }
  std::printf(
      "\nAfter injecting 4 dirty tuples, %zu single-attribute FDs hold "
      "only approximately (0 < g3 <= 0.06), e.g.:\n",
      broken);
  size_t shown = 0;
  for (const auto& a : *approx) {
    if (a.g3 > 0.0 && shown < 4) {
      std::printf("  g3=%.4f  %s\n", a.g3,
                  a.fd.ToString(dirty->dirty.schema()).c_str());
      ++shown;
    }
  }

  // 3. Multi-valued dependencies: the join R = E |x| D |x| P plants the
  // *block* MVD DeptNo ->> {employee attributes} (employees x projects
  // inside each department form a cross product).
  fd::AttributeSet emp_attrs;
  for (const char* name : {"EmpNo", "FirstName", "LastName", "PhoneNo",
                           "HireYear", "Job", "EduLevel", "Sex",
                           "BirthYear"}) {
    emp_attrs = emp_attrs.With(rel->schema().Find(name).value());
  }
  const fd::MultiValuedDependency planted{
      fd::AttributeSet::Single(rel->schema().Find("DeptNo").value()),
      emp_attrs};
  std::printf("\nPlanted block MVD %s: %s\n",
              planted.ToString(rel->schema()).c_str(),
              fd::HoldsMvd(*rel, planted) ? "holds (verified)" : "FAILED");
  fd::MvdMinerOptions mvd_options;
  mvd_options.max_lhs = 1;
  auto mvds = fd::MineMvds(*rel, mvd_options);
  if (!mvds.ok()) return 1;
  std::printf(
      "Single-attribute-RHS miner finds %zu further non-FD MVDs (block "
      "MVDs like the one above need the multi-attribute RHS check).\n",
      mvds->size());

  // 4. Lossless decomposition on the department FD.
  const auto dept = rel->schema().Find("DeptNo").value();
  const auto name = rel->schema().Find("DeptName").value();
  const auto mgr = rel->schema().Find("MgrNo").value();
  fd::FunctionalDependency dept_fd{
      fd::AttributeSet::Single(dept),
      fd::AttributeSet::Single(name).With(mgr)};
  auto decomposition = core::DecomposeOn(*rel, dept_fd);
  if (!decomposition.ok()) return 1;
  auto lossless = core::JoinsBackLosslessly(*rel, dept_fd, *decomposition);
  std::printf(
      "\nDecomposing on %s: S1 %zux%zu, S2 %zux%zu, cells %zu -> %zu "
      "(%.1f%% saved), lossless join: %s\n",
      dept_fd.ToString(rel->schema()).c_str(), decomposition->s1.NumTuples(),
      decomposition->s1.NumAttributes(), decomposition->s2.NumTuples(),
      decomposition->s2.NumAttributes(), decomposition->original_cells,
      decomposition->decomposed_cells, 100.0 * decomposition->storage_saving,
      lossless.ok() && *lossless ? "verified" : "FAILED");
  return 0;
}

}  // namespace

int main() { return Run(); }
