// The paper's Section 6.1.2 motivating case end to end: an orders table
// overloaded with product AND service orders is horizontally partitioned
// back into its two kinds, and each fragment is then profiled — the
// service fragment's product columns (and vice versa) turn out to be
// constant NULL, i.e. droppable.
//
// Build & run:  ./build/examples/overloaded_orders

#include <cstdio>

#include "core/horizontal_partition.h"
#include "datagen/orders.h"
#include "relation/ops.h"
#include "relation/stats.h"

namespace {

using namespace limbo;  // NOLINT

int Run() {
  datagen::OrdersOptions gen;
  gen.num_orders = 3000;
  const relation::Relation rel = datagen::GenerateOrders(gen);
  std::printf("Overloaded order table: %zu tuples x %zu attributes\n\n",
              rel.NumTuples(), rel.NumAttributes());
  std::printf("%s\n", relation::Profile(rel).ToString().c_str());

  core::HorizontalPartitionOptions options;
  options.phi = 0.5;
  options.max_k = 6;
  auto result = core::HorizontallyPartition(rel, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Natural k chosen by the delta-I heuristic: %zu\n",
              result->chosen_k);

  // Ground-truth purity per cluster.
  for (size_t c = 0; c < result->chosen_k; ++c) {
    size_t service = 0;
    std::vector<relation::TupleId> members;
    for (relation::TupleId t = 0; t < rel.NumTuples(); ++t) {
      if (result->assignments[t] == c) {
        members.push_back(t);
        service += datagen::IsServiceOrder(rel, t);
      }
    }
    std::printf(
        "\ncluster %zu: %zu tuples (%zu service, %zu product)\n", c + 1,
        members.size(), service, members.size() - service);
    const relation::Relation fragment = relation::SelectRows(rel, members);
    const auto profile = relation::Profile(fragment);
    std::printf("  columns now constant (droppable in this fragment):");
    bool any = false;
    for (const auto& column : profile.columns) {
      if (column.is_constant && column.null_fraction == 1.0) {
        std::printf(" %s", column.name.c_str());
        any = true;
      }
    }
    std::printf(any ? "\n" : " none\n");
  }

  std::printf(
      "\nThe partitioning recovers the product/service split the schema "
      "lost, and each fragment's alien columns collapse to NULL-constants "
      "— exactly the redesign clue Section 6.1.2 describes.\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
