// Persisting and reusing Phase-1 summaries: the expensive tuple-summary
// pass is built once, saved to disk, and reloaded to answer a different
// question (Double-Clustered value groups) without touching the raw
// tuples again — the data-browser workflow the paper targets.
//
// Build & run:  ./build/examples/reuse_summaries

#include <cstdio>

#include "core/info.h"
#include "core/limbo.h"
#include "core/summary_io.h"
#include "core/tuple_clustering.h"
#include "core/value_clustering.h"
#include "datagen/dblp.h"

namespace {

using namespace limbo;  // NOLINT

int Run() {
  datagen::DblpOptions gen;
  gen.target_tuples = 5000;
  const relation::Relation rel = datagen::GenerateDblp(gen);
  std::printf("Relation: %zu tuples x %zu attributes\n", rel.NumTuples(),
              rel.NumAttributes());

  // Session 1: build and persist the tuple summaries.
  const auto objects = core::BuildTupleObjects(rel);
  core::WeightedRows rows;
  for (const auto& o : objects) {
    rows.weights.push_back(o.p);
    rows.rows.push_back(o.cond);
  }
  const double info = core::MutualInformation(rows);
  core::LimboOptions options;
  options.phi = 0.5;
  const auto leaves = core::LimboPhase1(
      objects, options, 0.5 * info / static_cast<double>(objects.size()));
  const std::string path = "/tmp/limbo_example_summaries.dcf";
  if (!core::SaveDcfs(leaves, path).ok()) return 1;
  std::printf("Session 1: built %zu summaries (I = %.3f bits), saved to %s\n",
              leaves.size(), info, path.c_str());

  // Session 2: reload and use them for Double Clustering.
  auto reloaded = core::LoadDcfs(path);
  if (!reloaded.ok()) return 1;
  auto labels = core::LimboPhase3(objects, *reloaded);
  if (!labels.ok()) return 1;
  core::ValueClusteringOptions value_options;
  value_options.phi_v = 1.0;
  value_options.tuple_labels = &labels.value();
  value_options.num_tuple_clusters = reloaded->size();
  auto values = core::ClusterValues(rel, value_options);
  if (!values.ok()) return 1;
  std::printf(
      "Session 2: reloaded %zu summaries and found %zu duplicate value "
      "groups over them (of %zu groups total).\n",
      reloaded->size(), values->duplicate_groups.size(),
      values->groups.size());
  return 0;
}

}  // namespace

int main() { return Run(); }
