// Horizontal partitioning of an overloaded relation (Section 6.1.2 /
// 8.2): a DBLP-style publication table mixing conference papers, journal
// articles and theses is split into its natural kinds.
//
// Build & run:  ./build/examples/horizontal_partition [num_tuples]

#include <cstdio>
#include <cstdlib>

#include "core/horizontal_partition.h"
#include "datagen/dblp.h"
#include "relation/ops.h"

namespace {

using namespace limbo;  // NOLINT: example brevity

int Run(size_t target_tuples, double phi) {
  datagen::DblpOptions gen;
  gen.target_tuples = target_tuples;
  const relation::Relation full = datagen::GenerateDblp(gen);
  std::printf("DBLP-style relation: %zu tuples x %zu attributes\n",
              full.NumTuples(), full.NumAttributes());

  // Drop the six >=98%-NULL columns first, as the paper does after its
  // attribute-grouping step.
  auto projected = relation::ProjectNames(
      full, {"Author", "Pages", "BookTitle", "Year", "Volume", "Journal",
             "Number"});
  if (!projected.ok()) return 1;

  core::HorizontalPartitionOptions options;
  options.phi = phi;
  options.max_k = 8;
  auto result = core::HorizontallyPartition(*projected, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("Phase-1 summaries: %zu leaves; chose k = %zu\n",
              result->num_leaves, result->chosen_k);
  std::printf("Information lost by the partitioning: %.2f%%\n\n",
              100.0 * result->info_loss_fraction);
  std::printf("%-8s %-10s %-14s\n", "Cluster", "Tuples", "AttributeValues");
  for (size_t c = 0; c < result->cluster_sizes.size(); ++c) {
    std::printf("c%-7zu %-10zu %-14zu\n", c + 1, result->cluster_sizes[c],
                result->cluster_value_counts[c]);
  }

  std::printf("\ndelta-I knee statistics (k, per-merge loss):\n");
  for (const auto& s : result->stats) {
    std::printf("  k=%-3zu deltaI=%.5f  info retained=%.1f%%\n", s.k,
                s.delta_i, 100.0 * s.info_retained);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = 20000;
  double phi = 0.5;
  if (argc > 1) n = static_cast<size_t>(std::atoll(argv[1]));
  if (argc > 2) phi = std::atof(argv[2]);
  return Run(n, phi);
}
