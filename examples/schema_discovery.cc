// Schema (re)discovery on the DB2-style sample (Section 8.1): mine FDs,
// group attributes by shared duplicate values, rank the dependencies and
// suggest the decomposition that removes the most redundancy.
//
// Build & run:  ./build/examples/schema_discovery

#include <cstdio>

#include "core/attribute_grouping.h"
#include "core/fd_rank.h"
#include "core/information_content.h"
#include "core/measures.h"
#include "core/value_clustering.h"
#include "datagen/db2_sample.h"
#include "fd/fdep.h"
#include "fd/min_cover.h"

namespace {

using namespace limbo;  // NOLINT: example brevity

int Run() {
  auto rel_result = datagen::Db2Sample::JoinedRelation();
  if (!rel_result.ok()) return 1;
  const relation::Relation& rel = *rel_result;
  std::printf(
      "Joined relation R = EMPLOYEE |x| DEPARTMENT |x| PROJECT: "
      "%zu tuples, %zu attributes, %zu values\n\n",
      rel.NumTuples(), rel.NumAttributes(), rel.NumValues());

  // 1. Mine functional dependencies with FDEP, reduce to a minimum cover.
  auto fds = fd::Fdep::Mine(rel);
  if (!fds.ok()) {
    std::fprintf(stderr, "fdep: %s\n", fds.status().ToString().c_str());
    return 1;
  }
  const auto cover = fd::MinimumCover(*fds);
  std::printf("FDEP discovered %zu minimal FDs; minimum cover has %zu.\n",
              fds->size(), cover.size());

  // 2. Value clustering (phi_V = 0) and attribute grouping.
  auto values = core::ClusterValues(rel, {});
  if (!values.ok()) return 1;
  std::printf("Duplicate value groups (CV_D): %zu of %zu groups\n",
              values->duplicate_groups.size(), values->groups.size());
  auto grouping = core::GroupAttributes(rel, *values);
  if (!grouping.ok()) return 1;
  std::printf("\nAttribute dendrogram (cf. Figure 14):\n%s",
              grouping->DendrogramText(rel.schema()).c_str());

  // 3. Rank the minimum cover with FD-RANK.
  auto ranked = core::RankFds(cover, *grouping);
  if (!ranked.ok()) return 1;
  std::printf("\nTop-ranked dependencies (psi = 0.5):\n");
  size_t shown = 0;
  for (const auto& r : *ranked) {
    if (!r.anchored) continue;
    const auto attrs = r.fd.lhs.Union(r.fd.rhs).ToList();
    std::printf("  %zu. %s  rank=%.4f RAD=%.3f RTR=%.3f\n", ++shown,
                r.fd.ToString(rel.schema()).c_str(), r.rank,
                core::Rad(rel, attrs), core::Rtr(rel, attrs));
    if (shown == 5) break;
  }
  if (shown > 0) {
    std::printf(
        "\nDecomposing R on the #1 dependency removes the most "
        "redundancy (highest RAD/RTR among the anchored FDs).\n");
  }

  // Instance-level information content (the Figure-1 notion): how many
  // cells of R are inferable from the *anchored* dependencies — the ones
  // FD-RANK tells the analyst to act on?
  std::vector<fd::FunctionalDependency> anchored;
  for (const auto& r : *ranked) {
    if (r.anchored) anchored.push_back(r.fd);
  }
  auto content = core::AnalyzeInformationContent(rel, anchored);
  if (content.ok()) {
    std::printf(
        "\nInformation content of R under the %zu anchored FDs: %.1f%% "
        "(%zu of %zu cells are redundant — a normalized design would "
        "store them once).\n",
        anchored.size(), 100.0 * content->content, content->redundant_cells,
        content->total_cells);
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
