// Quickstart: the paper's running example (Figures 4-11) end to end on a
// tiny inline relation — value clustering, duplicate value groups,
// attribute grouping, FD mining and FD-RANK.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/attribute_grouping.h"
#include "core/dendrogram.h"
#include "core/fd_rank.h"
#include "core/measures.h"
#include "core/value_clustering.h"
#include "fd/fdep.h"
#include "relation/csv_io.h"

namespace {

using namespace limbo;  // NOLINT: example brevity

int Run() {
  // The relation of Figure 4 of the paper.
  auto rel_result = relation::ParseCsv(
      "A,B,C\n"
      "a,1,p\n"
      "a,1,r\n"
      "w,2,x\n"
      "y,2,x\n"
      "z,2,x\n");
  if (!rel_result.ok()) {
    std::fprintf(stderr, "parse: %s\n", rel_result.status().ToString().c_str());
    return 1;
  }
  const relation::Relation& rel = *rel_result;
  std::printf("Input relation (Figure 4):\n%s\n", rel.ToString().c_str());

  // 1. Cluster attribute values at phi_V = 0: perfectly co-occurring
  //    values merge.
  auto values = core::ClusterValues(rel, {});
  if (!values.ok()) {
    std::fprintf(stderr, "cluster: %s\n", values.status().ToString().c_str());
    return 1;
  }
  std::printf("Value groups (phi_V = 0):\n");
  for (const auto& group : values->groups) {
    std::printf("  {");
    for (size_t i = 0; i < group.values.size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  rel.dictionary()
                      .QualifiedName(rel.schema(), group.values[i])
                      .c_str());
    }
    std::printf("}%s\n", group.is_duplicate ? "   <- CV_D (duplicate)" : "");
  }

  // 2. Group attributes over the duplicate value groups (matrix F).
  auto grouping = core::GroupAttributes(rel, *values);
  if (!grouping.ok()) {
    std::fprintf(stderr, "group: %s\n", grouping.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> leaf_labels;
  for (relation::AttributeId a : grouping->attributes) {
    leaf_labels.push_back(rel.schema().Name(a));
  }
  std::printf("\nAttribute dendrogram (Figure 10):\n%s",
              core::RenderDendrogram(grouping->aib, leaf_labels).c_str());
  std::printf("\nMerge losses:\n%s",
              grouping->DendrogramText(rel.schema()).c_str());

  // 3. Mine FDs with FDEP and rank them with FD-RANK (psi = 0.5).
  auto fds = fd::Fdep::Mine(rel);
  if (!fds.ok()) return 1;
  auto ranked = core::RankFds(*fds, *grouping);
  if (!ranked.ok()) return 1;
  std::printf("\nRanked dependencies (most redundancy first):\n");
  for (const auto& r : *ranked) {
    const auto attrs = r.fd.lhs.Union(r.fd.rhs).ToList();
    std::printf("  rank=%.4f%s  %s   RAD=%.3f RTR=%.3f\n", r.rank,
                r.anchored ? "*" : " ",
                r.fd.ToString(rel.schema()).c_str(),
                core::Rad(rel, attrs), core::Rtr(rel, attrs));
  }
  std::printf("(* = anchored below psi * max merge loss)\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
